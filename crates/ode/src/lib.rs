//! Ordinary differential equation solvers for metabolic pathway simulation.
//!
//! The C3 photosynthesis model in `pathway-photosynthesis` is a set of coupled,
//! moderately stiff ODEs that must be integrated to steady state before its
//! CO₂ uptake rate can be read off. The Rust ODE ecosystem is thin, so this
//! crate hand-rolls the integrators the workspace needs:
//!
//! * [`Rk4`] — fixed-step classical Runge–Kutta, the workhorse for smooth
//!   systems with a known safe step size.
//! * [`Rkf45`] — adaptive Runge–Kutta–Fehlberg 4(5) with step-size control.
//! * [`CashKarp`] — adaptive Cash–Karp 4(5), an alternative embedded pair.
//! * [`BackwardEuler`] — a semi-implicit first-order method with a damped
//!   Newton corrector and finite-difference Jacobian, for stiff regions.
//! * [`SteadyStateDriver`] — repeatedly integrates until the state stops
//!   changing, which is how uptake rates are evaluated.
//!
//! # Example
//!
//! ```
//! use pathway_ode::{OdeSystem, Rk4, Integrator};
//! use pathway_linalg::Vector;
//!
//! /// Exponential decay dy/dt = -y.
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn rhs(&self, _t: f64, y: &Vector, dydt: &mut Vector) {
//!         dydt[0] = -y[0];
//!     }
//! }
//!
//! # fn main() -> Result<(), pathway_ode::OdeError> {
//! let solver = Rk4::new(1e-3);
//! let result = solver.integrate(&Decay, 0.0, Vector::from(vec![1.0]), 1.0)?;
//! assert!((result.state[0] - (-1.0f64).exp()).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod error;
mod implicit;
mod rk4;
mod rkf45;
mod stats;
mod steady_state;
mod system;

pub use error::OdeError;
pub use implicit::BackwardEuler;
pub use rk4::Rk4;
pub use rkf45::{AdaptiveOptions, CashKarp, Rkf45};
pub use stats::IntegrationStats;
pub use steady_state::{SteadyState, SteadyStateDriver, SteadyStateOptions};
pub use system::{IntegrationResult, Integrator, OdeSystem};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, OdeError>;

/// `true` when `x` is strictly positive; false for NaN, so option validation
/// rejects NaN inputs.
pub(crate) fn is_strictly_positive(x: f64) -> bool {
    x > 0.0
}

/// `true` when `a >= b`; false when either side is NaN, so option validation
/// rejects NaN inputs.
pub(crate) fn is_at_least(a: f64, b: f64) -> bool {
    a >= b
}
