//! Enzyme-kinetics toolkit shared by the metabolic models in this workspace.
//!
//! The crate provides the vocabulary the C3 photosynthesis model and the
//! optimization layer talk in:
//!
//! * [`Enzyme`] — a catalytic protein with a turnover number, Michaelis
//!   constant and molecular weight.
//! * [`rate_laws`] — Michaelis–Menten rate laws with inhibition and
//!   activation, plus simple mass-action kinetics for equilibrium pools.
//! * [`nitrogen`] — the protein-nitrogen cost of an enzyme partition, the
//!   second objective of the paper's leaf-redesign problem.
//! * [`ReactionNetwork`] — a small builder for metabolite/reaction networks
//!   used to sanity-check stoichiometric consistency.
//!
//! # Example
//!
//! ```
//! use pathway_kinetics::rate_laws;
//!
//! // Rubisco-like carboxylation at saturating substrate runs near Vmax.
//! let v = rate_laws::michaelis_menten(100.0, 2.0, 50.0);
//! assert!(v > 95.0 && v <= 100.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod enzyme;
mod network;
pub mod nitrogen;
pub mod rate_laws;

pub use enzyme::{Enzyme, EnzymeId, KineticConstants};
pub use network::{Metabolite, Reaction, ReactionNetwork};
