//! Rate laws for enzyme-catalysed and equilibrium reactions.
//!
//! All concentrations are in mmol/l and all rates in mmol/(l·s). Every rate
//! law clamps negative substrate concentrations to zero so that transient
//! negative excursions during integration do not produce negative rates in the
//! wrong direction.

/// Irreversible single-substrate Michaelis–Menten kinetics:
/// `v = Vmax · S / (Km + S)`.
///
/// # Example
///
/// ```
/// use pathway_kinetics::rate_laws::michaelis_menten;
///
/// assert_eq!(michaelis_menten(10.0, 2.0, 2.0), 5.0); // half-saturation at S = Km
/// assert_eq!(michaelis_menten(10.0, 2.0, 0.0), 0.0);
/// ```
pub fn michaelis_menten(vmax: f64, km: f64, substrate: f64) -> f64 {
    let s = substrate.max(0.0);
    if km + s <= 0.0 {
        return 0.0;
    }
    vmax * s / (km + s)
}

/// Two-substrate (ordered) Michaelis–Menten kinetics:
/// `v = Vmax · A·B / ((Kma + A)(Kmb + B))`.
pub fn michaelis_menten_two_substrates(
    vmax: f64,
    km_a: f64,
    substrate_a: f64,
    km_b: f64,
    substrate_b: f64,
) -> f64 {
    let a = substrate_a.max(0.0);
    let b = substrate_b.max(0.0);
    let denom = (km_a + a) * (km_b + b);
    if denom <= 0.0 {
        return 0.0;
    }
    vmax * a * b / denom
}

/// Michaelis–Menten kinetics with a competitive inhibitor:
/// `v = Vmax · S / (Km (1 + I/Ki) + S)`.
pub fn competitive_inhibition(vmax: f64, km: f64, substrate: f64, inhibitor: f64, ki: f64) -> f64 {
    let s = substrate.max(0.0);
    let i = inhibitor.max(0.0);
    let km_eff = km * (1.0 + i / ki.max(f64::MIN_POSITIVE));
    michaelis_menten(vmax, km_eff, s)
}

/// Michaelis–Menten kinetics with a non-competitive inhibitor:
/// `v = Vmax / (1 + I/Ki) · S / (Km + S)`.
pub fn noncompetitive_inhibition(
    vmax: f64,
    km: f64,
    substrate: f64,
    inhibitor: f64,
    ki: f64,
) -> f64 {
    let i = inhibitor.max(0.0);
    let vmax_eff = vmax / (1.0 + i / ki.max(f64::MIN_POSITIVE));
    michaelis_menten(vmax_eff, km, substrate)
}

/// Michaelis–Menten kinetics modulated by a hyperbolic activator:
/// `v = Vmax · (A / (Ka + A)) · S / (Km + S)`.
///
/// When the activator concentration is far above `Ka` this reduces to plain
/// Michaelis–Menten; when the activator is absent the rate is zero.
pub fn activated_michaelis_menten(
    vmax: f64,
    km: f64,
    substrate: f64,
    activator: f64,
    ka: f64,
) -> f64 {
    let a = activator.max(0.0);
    let activation = a / (ka.max(f64::MIN_POSITIVE) + a);
    michaelis_menten(vmax * activation, km, substrate)
}

/// Reversible Michaelis–Menten kinetics (Haldane form) for a reaction
/// `S <-> P` with equilibrium constant `keq`:
/// `v = Vmax (S - P/keq) / (Km + S + P·Km/Kmp)`.
pub fn reversible_michaelis_menten(
    vmax: f64,
    km_s: f64,
    km_p: f64,
    keq: f64,
    substrate: f64,
    product: f64,
) -> f64 {
    let s = substrate.max(0.0);
    let p = product.max(0.0);
    let driving = s - p / keq.max(f64::MIN_POSITIVE);
    let denom = km_s + s + p * km_s / km_p.max(f64::MIN_POSITIVE);
    if denom <= 0.0 {
        return 0.0;
    }
    vmax * driving / denom
}

/// First-order mass-action kinetics `v = k · S`, used for fast equilibrium
/// interconversions (GAP/DHAP, pentose-phosphate pools, hexose-phosphate
/// pools) which the paper's model treats as near-instantaneous.
pub fn mass_action(k: f64, substrate: f64) -> f64 {
    k * substrate.max(0.0)
}

/// Net rate of a fast reversible interconversion `A <-> B` relaxing towards
/// the equilibrium ratio `keq = B/A`: `v = k (A - B/keq)`.
pub fn equilibrium_relaxation(k: f64, keq: f64, a: f64, b: f64) -> f64 {
    k * (a.max(0.0) - b.max(0.0) / keq.max(f64::MIN_POSITIVE))
}

/// Hill kinetics `v = Vmax · S^n / (K^n + S^n)` for cooperative enzymes.
pub fn hill(vmax: f64, k_half: f64, n: f64, substrate: f64) -> f64 {
    let s = substrate.max(0.0);
    if s == 0.0 {
        return 0.0;
    }
    let sn = s.powf(n);
    let kn = k_half.max(f64::MIN_POSITIVE).powf(n);
    vmax * sn / (kn + sn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn michaelis_menten_limits() {
        // Zero substrate gives zero rate; saturating substrate approaches Vmax.
        assert_eq!(michaelis_menten(7.0, 1.0, 0.0), 0.0);
        assert!(michaelis_menten(7.0, 1.0, 1e6) > 6.99);
        // Half saturation at S = Km.
        assert!((michaelis_menten(8.0, 2.0, 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn negative_substrate_is_clamped() {
        assert_eq!(michaelis_menten(5.0, 1.0, -3.0), 0.0);
        assert_eq!(mass_action(2.0, -1.0), 0.0);
        assert_eq!(hill(5.0, 1.0, 2.0, -1.0), 0.0);
    }

    #[test]
    fn two_substrate_rate_needs_both_substrates() {
        assert_eq!(
            michaelis_menten_two_substrates(10.0, 1.0, 0.0, 1.0, 5.0),
            0.0
        );
        assert_eq!(
            michaelis_menten_two_substrates(10.0, 1.0, 5.0, 1.0, 0.0),
            0.0
        );
        let v = michaelis_menten_two_substrates(10.0, 1.0, 100.0, 1.0, 100.0);
        assert!(v > 9.5);
    }

    #[test]
    fn competitive_inhibition_raises_apparent_km() {
        let uninhibited = competitive_inhibition(10.0, 1.0, 1.0, 0.0, 1.0);
        let inhibited = competitive_inhibition(10.0, 1.0, 1.0, 5.0, 1.0);
        assert!(inhibited < uninhibited);
        // At saturating substrate the competitive inhibitor loses its grip.
        let saturated = competitive_inhibition(10.0, 1.0, 1e6, 5.0, 1.0);
        assert!(saturated > 9.9);
    }

    #[test]
    fn noncompetitive_inhibition_lowers_vmax_even_at_saturation() {
        let saturated = noncompetitive_inhibition(10.0, 1.0, 1e6, 1.0, 1.0);
        assert!(saturated < 5.1);
    }

    #[test]
    fn activation_scales_from_zero_to_full() {
        assert_eq!(activated_michaelis_menten(10.0, 1.0, 5.0, 0.0, 0.5), 0.0);
        let full = activated_michaelis_menten(10.0, 1.0, 5.0, 1e6, 0.5);
        let plain = michaelis_menten(10.0, 1.0, 5.0);
        assert!((full - plain).abs() < 1e-3);
    }

    #[test]
    fn reversible_rate_changes_sign_across_equilibrium() {
        // keq = 2: equilibrium at P = 2 S.
        let forward = reversible_michaelis_menten(5.0, 1.0, 1.0, 2.0, 1.0, 0.5);
        let backward = reversible_michaelis_menten(5.0, 1.0, 1.0, 2.0, 0.1, 4.0);
        let at_eq = reversible_michaelis_menten(5.0, 1.0, 1.0, 2.0, 1.0, 2.0);
        assert!(forward > 0.0);
        assert!(backward < 0.0);
        assert!(at_eq.abs() < 1e-12);
    }

    #[test]
    fn equilibrium_relaxation_sign() {
        assert!(equilibrium_relaxation(1.0, 1.0, 2.0, 1.0) > 0.0);
        assert!(equilibrium_relaxation(1.0, 1.0, 1.0, 2.0) < 0.0);
        assert_eq!(equilibrium_relaxation(1.0, 1.0, 1.0, 1.0), 0.0);
    }

    #[test]
    fn hill_kinetics_is_sigmoidal() {
        let low = hill(10.0, 1.0, 4.0, 0.5);
        let mid = hill(10.0, 1.0, 4.0, 1.0);
        let high = hill(10.0, 1.0, 4.0, 2.0);
        assert!(low < mid && mid < high);
        assert!((mid - 5.0).abs() < 1e-12);
        // Steeper than plain MM below the half-saturation point.
        assert!(low < michaelis_menten(10.0, 1.0, 0.5));
    }

    proptest! {
        #[test]
        fn prop_mm_monotone_in_substrate(vmax in 0.1f64..100.0, km in 0.01f64..10.0, s in 0.0f64..100.0) {
            let v1 = michaelis_menten(vmax, km, s);
            let v2 = michaelis_menten(vmax, km, s + 1.0);
            prop_assert!(v2 >= v1);
            prop_assert!(v1 >= 0.0 && v1 <= vmax);
        }

        #[test]
        fn prop_mm_bounded_by_vmax(vmax in 0.1f64..100.0, km in 0.01f64..10.0, s in 0.0f64..1e6) {
            prop_assert!(michaelis_menten(vmax, km, s) <= vmax);
        }

        #[test]
        fn prop_inhibition_never_accelerates(
            vmax in 0.1f64..100.0,
            km in 0.01f64..10.0,
            s in 0.0f64..100.0,
            i in 0.0f64..100.0,
            ki in 0.01f64..10.0,
        ) {
            let base = michaelis_menten(vmax, km, s);
            prop_assert!(competitive_inhibition(vmax, km, s, i, ki) <= base + 1e-12);
            prop_assert!(noncompetitive_inhibition(vmax, km, s, i, ki) <= base + 1e-12);
        }
    }
}
