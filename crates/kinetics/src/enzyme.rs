use std::fmt;

/// Stable identifier of an enzyme within a model.
///
/// Models assign indices in their own enzyme tables; the newtype keeps those
/// indices from being confused with metabolite or reaction indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnzymeId(pub usize);

impl fmt::Display for EnzymeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "enzyme#{}", self.0)
    }
}

/// Kinetic constants of an enzyme-catalysed reaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KineticConstants {
    /// Turnover number k_cat in 1/s (substrate molecules per active site per second).
    pub k_cat: f64,
    /// Michaelis constant K_m in mmol/l for the primary substrate.
    pub k_m: f64,
}

impl KineticConstants {
    /// Creates a constant set.
    ///
    /// # Panics
    ///
    /// Panics if either constant is not strictly positive and finite.
    pub fn new(k_cat: f64, k_m: f64) -> Self {
        assert!(k_cat.is_finite() && k_cat > 0.0, "k_cat must be positive");
        assert!(k_m.is_finite() && k_m > 0.0, "K_m must be positive");
        KineticConstants { k_cat, k_m }
    }

    /// Maximum catalytic rate `Vmax = k_cat * [E]` for an enzyme concentration
    /// in mmol/l; the result is in mmol/(l·s).
    pub fn vmax(&self, enzyme_concentration: f64) -> f64 {
        self.k_cat * enzyme_concentration
    }

    /// Catalytic efficiency `k_cat / K_m`.
    pub fn efficiency(&self) -> f64 {
        self.k_cat / self.k_m
    }
}

/// A catalytic protein of a metabolic model.
///
/// The protein-nitrogen accounting of the paper needs the molecular weight and
/// the turnover number: the nitrogen invested in sustaining a catalytic
/// capacity `v` scales as `v · MW / k_cat` (a slow, heavy enzyme is expensive).
///
/// # Example
///
/// ```
/// use pathway_kinetics::{Enzyme, KineticConstants};
///
/// let rubisco = Enzyme::new("Rubisco", KineticConstants::new(3.5, 10.9), 550_000.0)
///     .with_nitrogen_fraction(0.16);
/// assert_eq!(rubisco.name(), "Rubisco");
/// assert!(rubisco.nitrogen_per_catalytic_unit() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Enzyme {
    name: String,
    constants: KineticConstants,
    /// Molecular weight in g/mol.
    molecular_weight: f64,
    /// Mass fraction of nitrogen in the protein (defaults to 0.16, the
    /// canonical protein nitrogen content).
    nitrogen_fraction: f64,
}

impl Enzyme {
    /// Canonical nitrogen mass fraction of protein.
    pub const DEFAULT_NITROGEN_FRACTION: f64 = 0.16;

    /// Creates an enzyme record.
    ///
    /// # Panics
    ///
    /// Panics if `molecular_weight` is not strictly positive and finite.
    pub fn new(
        name: impl Into<String>,
        constants: KineticConstants,
        molecular_weight: f64,
    ) -> Self {
        assert!(
            molecular_weight.is_finite() && molecular_weight > 0.0,
            "molecular weight must be positive"
        );
        Enzyme {
            name: name.into(),
            constants,
            molecular_weight,
            nitrogen_fraction: Self::DEFAULT_NITROGEN_FRACTION,
        }
    }

    /// Overrides the nitrogen mass fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn with_nitrogen_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "nitrogen fraction must be in (0, 1]"
        );
        self.nitrogen_fraction = fraction;
        self
    }

    /// Human-readable name (e.g. `"SBPase"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Kinetic constants.
    pub fn constants(&self) -> &KineticConstants {
        &self.constants
    }

    /// Molecular weight in g/mol.
    pub fn molecular_weight(&self) -> f64 {
        self.molecular_weight
    }

    /// Nitrogen mass fraction of the protein.
    pub fn nitrogen_fraction(&self) -> f64 {
        self.nitrogen_fraction
    }

    /// Nitrogen mass (mg) tied up per unit of catalytic capacity
    /// (mmol substrate · l⁻¹ · s⁻¹), following the paper's accounting
    /// `[Enzyme]·MW / k_cat` scaled by the protein nitrogen fraction.
    pub fn nitrogen_per_catalytic_unit(&self) -> f64 {
        self.nitrogen_fraction * self.molecular_weight / self.constants.k_cat
    }

    /// Maximum catalytic rate for a given enzyme concentration in mmol/l.
    pub fn vmax(&self, concentration: f64) -> f64 {
        self.constants.vmax(concentration)
    }
}

impl fmt::Display for Enzyme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (k_cat {:.3} 1/s, K_m {:.3} mM, MW {:.0} g/mol)",
            self.name, self.constants.k_cat, self.constants.k_m, self.molecular_weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kinetic_constants_accessors() {
        let k = KineticConstants::new(10.0, 0.5);
        assert_eq!(k.vmax(2.0), 20.0);
        assert_eq!(k.efficiency(), 20.0);
    }

    #[test]
    #[should_panic(expected = "k_cat must be positive")]
    fn zero_kcat_panics() {
        let _ = KineticConstants::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "K_m must be positive")]
    fn negative_km_panics() {
        let _ = KineticConstants::new(1.0, -1.0);
    }

    #[test]
    fn enzyme_nitrogen_accounting() {
        let e = Enzyme::new("SBPase", KineticConstants::new(20.0, 0.1), 80_000.0);
        // 0.16 * 80000 / 20 = 640 mg nitrogen per catalytic unit.
        assert!((e.nitrogen_per_catalytic_unit() - 640.0).abs() < 1e-9);
    }

    #[test]
    fn heavier_or_slower_enzymes_cost_more_nitrogen() {
        let light = Enzyme::new("fast", KineticConstants::new(100.0, 1.0), 50_000.0);
        let heavy = Enzyme::new("slow", KineticConstants::new(3.0, 1.0), 550_000.0);
        assert!(heavy.nitrogen_per_catalytic_unit() > light.nitrogen_per_catalytic_unit());
    }

    #[test]
    fn nitrogen_fraction_override() {
        let e =
            Enzyme::new("x", KineticConstants::new(1.0, 1.0), 1000.0).with_nitrogen_fraction(0.5);
        assert_eq!(e.nitrogen_fraction(), 0.5);
        assert!((e.nitrogen_per_catalytic_unit() - 500.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nitrogen fraction must be in (0, 1]")]
    fn invalid_nitrogen_fraction_panics() {
        let _ =
            Enzyme::new("x", KineticConstants::new(1.0, 1.0), 1000.0).with_nitrogen_fraction(1.5);
    }

    #[test]
    fn display_contains_name_and_constants() {
        let e = Enzyme::new("PRK", KineticConstants::new(5.0, 0.2), 90_000.0);
        let s = format!("{e}");
        assert!(s.contains("PRK"));
        assert!(s.contains("90000"));
        assert_eq!(format!("{}", EnzymeId(3)), "enzyme#3");
    }

    proptest! {
        #[test]
        fn prop_vmax_is_linear_in_concentration(
            k_cat in 0.1f64..100.0,
            conc in 0.0f64..10.0,
        ) {
            let k = KineticConstants::new(k_cat, 1.0);
            prop_assert!((k.vmax(2.0 * conc) - 2.0 * k.vmax(conc)).abs() < 1e-9);
        }
    }
}
