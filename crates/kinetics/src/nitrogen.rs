//! Protein-nitrogen accounting.
//!
//! The paper's leaf-redesign problem minimizes the total protein nitrogen the
//! leaf has to invest to sustain a set of enzyme activities. Following the
//! caption of Figure 2, the nitrogen of a partition `x` is
//! `Σ_i x_i · MW_i / k_cat,i` scaled by the protein nitrogen mass fraction —
//! fast, light enzymes are cheap; slow, heavy ones (Rubisco) dominate the
//! budget.

use crate::Enzyme;

/// Total protein nitrogen (mg/l) required to sustain the catalytic capacities
/// in `capacities` (mmol·l⁻¹·s⁻¹ per enzyme, i.e. the Vmax of each step).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
///
/// # Example
///
/// ```
/// use pathway_kinetics::{Enzyme, KineticConstants, nitrogen};
///
/// let enzymes = vec![
///     Enzyme::new("Rubisco", KineticConstants::new(3.5, 10.9), 550_000.0),
///     Enzyme::new("SBPase", KineticConstants::new(20.0, 0.1), 80_000.0),
/// ];
/// let n = nitrogen::total_nitrogen(&enzymes, &[1.0, 0.5]);
/// assert!(n > 0.0);
/// ```
pub fn total_nitrogen(enzymes: &[Enzyme], capacities: &[f64]) -> f64 {
    assert_eq!(
        enzymes.len(),
        capacities.len(),
        "one catalytic capacity per enzyme is required"
    );
    enzymes
        .iter()
        .zip(capacities.iter())
        .map(|(enzyme, &capacity)| enzyme.nitrogen_per_catalytic_unit() * capacity.max(0.0))
        .sum()
}

/// Per-enzyme nitrogen breakdown (mg/l), same ordering as the inputs.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn nitrogen_breakdown(enzymes: &[Enzyme], capacities: &[f64]) -> Vec<f64> {
    assert_eq!(
        enzymes.len(),
        capacities.len(),
        "one catalytic capacity per enzyme is required"
    );
    enzymes
        .iter()
        .zip(capacities.iter())
        .map(|(enzyme, &capacity)| enzyme.nitrogen_per_catalytic_unit() * capacity.max(0.0))
        .collect()
}

/// Scales a capacity vector so that its total nitrogen matches `budget`
/// (mg/l). Returns the scaled capacities; a zero-nitrogen input is returned
/// unchanged.
///
/// This is the "conserved quantity" constraint of the Zhu et al. model: the
/// optimizer redistributes a fixed nitrogen budget among enzymes rather than
/// creating nitrogen out of thin air.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn rescale_to_budget(enzymes: &[Enzyme], capacities: &[f64], budget: f64) -> Vec<f64> {
    let current = total_nitrogen(enzymes, capacities);
    if current <= 0.0 {
        return capacities.to_vec();
    }
    let factor = budget / current;
    capacities.iter().map(|&c| c.max(0.0) * factor).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KineticConstants;
    use proptest::prelude::*;

    fn sample_enzymes() -> Vec<Enzyme> {
        vec![
            Enzyme::new("Rubisco", KineticConstants::new(3.5, 10.9), 550_000.0),
            Enzyme::new("SBPase", KineticConstants::new(20.0, 0.1), 80_000.0),
            Enzyme::new("PRK", KineticConstants::new(200.0, 0.05), 90_000.0),
        ]
    }

    #[test]
    fn total_is_sum_of_breakdown() {
        let enzymes = sample_enzymes();
        let caps = [1.0, 2.0, 0.5];
        let breakdown = nitrogen_breakdown(&enzymes, &caps);
        let total = total_nitrogen(&enzymes, &caps);
        assert!((breakdown.iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    fn rubisco_dominates_the_budget_at_equal_capacity() {
        let enzymes = sample_enzymes();
        let breakdown = nitrogen_breakdown(&enzymes, &[1.0, 1.0, 1.0]);
        assert!(breakdown[0] > breakdown[1]);
        assert!(breakdown[0] > breakdown[2]);
    }

    #[test]
    fn negative_capacities_do_not_produce_negative_nitrogen() {
        let enzymes = sample_enzymes();
        assert_eq!(total_nitrogen(&enzymes, &[-1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn rescale_hits_the_requested_budget() {
        let enzymes = sample_enzymes();
        let caps = [1.0, 2.0, 3.0];
        let scaled = rescale_to_budget(&enzymes, &caps, 5000.0);
        let n = total_nitrogen(&enzymes, &scaled);
        assert!((n - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn rescale_of_zero_vector_is_identity() {
        let enzymes = sample_enzymes();
        let caps = [0.0, 0.0, 0.0];
        assert_eq!(rescale_to_budget(&enzymes, &caps, 100.0), caps.to_vec());
    }

    #[test]
    #[should_panic(expected = "one catalytic capacity per enzyme")]
    fn mismatched_lengths_panic() {
        let enzymes = sample_enzymes();
        let _ = total_nitrogen(&enzymes, &[1.0]);
    }

    proptest! {
        #[test]
        fn prop_total_nitrogen_is_monotone(
            c0 in 0.0f64..10.0,
            c1 in 0.0f64..10.0,
            c2 in 0.0f64..10.0,
            extra in 0.0f64..5.0,
        ) {
            let enzymes = sample_enzymes();
            let base = total_nitrogen(&enzymes, &[c0, c1, c2]);
            let more = total_nitrogen(&enzymes, &[c0 + extra, c1, c2]);
            prop_assert!(more >= base);
        }

        #[test]
        fn prop_total_nitrogen_is_homogeneous(
            c0 in 0.0f64..10.0,
            c1 in 0.0f64..10.0,
            k in 0.0f64..4.0,
        ) {
            let enzymes = &sample_enzymes()[..2];
            let base = total_nitrogen(enzymes, &[c0, c1]);
            let scaled = total_nitrogen(enzymes, &[k * c0, k * c1]);
            prop_assert!((scaled - k * base).abs() < 1e-6 * (1.0 + base));
        }
    }
}
