use std::collections::HashMap;
use std::fmt;

/// A metabolite pool in a reaction network.
#[derive(Debug, Clone, PartialEq)]
pub struct Metabolite {
    /// Short identifier, e.g. `"RuBP"`.
    pub name: String,
    /// `true` if the pool is treated as an external boundary species whose
    /// concentration is held fixed (CO₂ in the stroma, exported sucrose, ...).
    pub boundary: bool,
}

/// A reaction with sparse stoichiometry over the network's metabolites.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// Short identifier, e.g. `"rubisco_carboxylation"`.
    pub name: String,
    /// `(metabolite index, stoichiometric coefficient)` pairs; negative
    /// coefficients are consumed, positive ones produced.
    pub stoichiometry: Vec<(usize, f64)>,
    /// `true` if the reaction may run backwards.
    pub reversible: bool,
}

/// A small metabolite/reaction network builder.
///
/// The photosynthesis crate uses this to declare its pathway topology once and
/// assert conservation properties (carbon and phosphate balance) in tests; the
/// FBA crate has its own heavier-weight stoichiometric model type.
///
/// # Example
///
/// ```
/// use pathway_kinetics::ReactionNetwork;
///
/// let mut network = ReactionNetwork::new();
/// let a = network.add_metabolite("A", false);
/// let b = network.add_metabolite("B", false);
/// network.add_reaction("a_to_b", &[(a, -1.0), (b, 1.0)], false);
/// assert_eq!(network.num_reactions(), 1);
/// assert!(network.is_balanced("a_to_b", &[("A", 1.0), ("B", 1.0)]).unwrap());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReactionNetwork {
    metabolites: Vec<Metabolite>,
    reactions: Vec<Reaction>,
    name_index: HashMap<String, usize>,
}

impl ReactionNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a metabolite and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if a metabolite with the same name already exists.
    pub fn add_metabolite(&mut self, name: impl Into<String>, boundary: bool) -> usize {
        let name = name.into();
        assert!(
            !self.name_index.contains_key(&name),
            "duplicate metabolite name: {name}"
        );
        let index = self.metabolites.len();
        self.name_index.insert(name.clone(), index);
        self.metabolites.push(Metabolite { name, boundary });
        index
    }

    /// Adds a reaction over existing metabolites and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any metabolite index is out of range.
    pub fn add_reaction(
        &mut self,
        name: impl Into<String>,
        stoichiometry: &[(usize, f64)],
        reversible: bool,
    ) -> usize {
        for &(m, _) in stoichiometry {
            assert!(
                m < self.metabolites.len(),
                "metabolite index {m} out of range"
            );
        }
        let index = self.reactions.len();
        self.reactions.push(Reaction {
            name: name.into(),
            stoichiometry: stoichiometry.to_vec(),
            reversible,
        });
        index
    }

    /// Number of metabolites.
    pub fn num_metabolites(&self) -> usize {
        self.metabolites.len()
    }

    /// Number of reactions.
    pub fn num_reactions(&self) -> usize {
        self.reactions.len()
    }

    /// Metabolite records in insertion order.
    pub fn metabolites(&self) -> &[Metabolite] {
        &self.metabolites
    }

    /// Reaction records in insertion order.
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// Index of a metabolite by name.
    pub fn metabolite_index(&self, name: &str) -> Option<usize> {
        self.name_index.get(name).copied()
    }

    /// Checks elemental balance of one reaction given a per-metabolite element
    /// content table `(metabolite name, atoms per molecule)`.
    ///
    /// Returns `None` if the reaction name is unknown. Boundary metabolites are
    /// included: a reaction exchanging matter with a boundary pool is balanced
    /// only if the boundary species carries the difference.
    pub fn is_balanced(&self, reaction: &str, element_content: &[(&str, f64)]) -> Option<bool> {
        let reaction = self.reactions.iter().find(|r| r.name == reaction)?;
        let content: HashMap<&str, f64> = element_content.iter().copied().collect();
        let mut balance = 0.0;
        for &(m, coeff) in &reaction.stoichiometry {
            let name = self.metabolites[m].name.as_str();
            let atoms = content.get(name).copied().unwrap_or(0.0);
            balance += coeff * atoms;
        }
        Some(balance.abs() < 1e-9)
    }

    /// Net stoichiometric production of a metabolite when every reaction runs
    /// at the given flux (one flux per reaction, same ordering).
    ///
    /// # Panics
    ///
    /// Panics if `fluxes.len() != self.num_reactions()` or the metabolite is
    /// unknown.
    pub fn net_production(&self, metabolite: &str, fluxes: &[f64]) -> f64 {
        assert_eq!(
            fluxes.len(),
            self.reactions.len(),
            "one flux per reaction is required"
        );
        let index = self
            .metabolite_index(metabolite)
            .unwrap_or_else(|| panic!("unknown metabolite: {metabolite}"));
        let mut net = 0.0;
        for (reaction, &flux) in self.reactions.iter().zip(fluxes.iter()) {
            for &(m, coeff) in &reaction.stoichiometry {
                if m == index {
                    net += coeff * flux;
                }
            }
        }
        net
    }
}

impl fmt::Display for ReactionNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reaction network with {} metabolites and {} reactions",
            self.num_metabolites(),
            self.num_reactions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_network() -> ReactionNetwork {
        let mut network = ReactionNetwork::new();
        let co2 = network.add_metabolite("CO2", true);
        let rubp = network.add_metabolite("RuBP", false);
        let pga = network.add_metabolite("PGA", false);
        // RuBP + CO2 -> 2 PGA
        network.add_reaction(
            "carboxylation",
            &[(rubp, -1.0), (co2, -1.0), (pga, 2.0)],
            false,
        );
        // 5/3 PGA -> RuBP (lumped regeneration, not carbon balanced on purpose)
        network.add_reaction("regeneration", &[(pga, -5.0 / 3.0), (rubp, 1.0)], false);
        network
    }

    #[test]
    fn indices_and_lookup() {
        let network = toy_network();
        assert_eq!(network.num_metabolites(), 3);
        assert_eq!(network.num_reactions(), 2);
        assert_eq!(network.metabolite_index("PGA"), Some(2));
        assert_eq!(network.metabolite_index("missing"), None);
        assert!(network.metabolites()[0].boundary);
    }

    #[test]
    #[should_panic(expected = "duplicate metabolite name")]
    fn duplicate_metabolite_panics() {
        let mut network = ReactionNetwork::new();
        network.add_metabolite("A", false);
        network.add_metabolite("A", false);
    }

    #[test]
    fn carbon_balance_of_carboxylation() {
        let network = toy_network();
        // Carbon content: CO2 = 1, RuBP = 5, PGA = 3 → -5 - 1 + 2*3 = 0.
        let balanced = network
            .is_balanced(
                "carboxylation",
                &[("CO2", 1.0), ("RuBP", 5.0), ("PGA", 3.0)],
            )
            .unwrap();
        assert!(balanced);
        // The lumped regeneration reaction is carbon balanced but not
        // phosphate balanced (RuBP carries 2 phosphates, PGA only 1).
        let unbalanced = network
            .is_balanced("regeneration", &[("RuBP", 2.0), ("PGA", 1.0)])
            .unwrap();
        assert!(!unbalanced);
        assert!(network.is_balanced("nope", &[]).is_none());
    }

    #[test]
    fn net_production_accumulates_over_reactions() {
        let network = toy_network();
        // Carboxylation at flux 3, regeneration at flux 1.2:
        // PGA: +2*3 - 5/3*1.2 = 6 - 2 = 4.
        let net = network.net_production("PGA", &[3.0, 1.2]);
        assert!((net - 4.0).abs() < 1e-12);
        // RuBP: -3 + 1.2 = -1.8
        let net = network.net_production("RuBP", &[3.0, 1.2]);
        assert!((net + 1.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one flux per reaction")]
    fn net_production_checks_flux_length() {
        let network = toy_network();
        let _ = network.net_production("PGA", &[1.0]);
    }

    #[test]
    fn display_mentions_counts() {
        let network = toy_network();
        let s = format!("{network}");
        assert!(s.contains('3') && s.contains('2'));
    }
}
