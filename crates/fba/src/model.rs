use std::collections::HashMap;
use std::fmt;

use pathway_linalg::{Bound, CsrMatrix};

use crate::FbaError;

/// A metabolite of a stoichiometric model.
#[derive(Debug, Clone, PartialEq)]
pub struct Metabolite {
    /// Identifier, e.g. `"atp_c"`.
    pub id: String,
    /// `true` if the metabolite is an external/boundary species not subject to
    /// the steady-state constraint.
    pub boundary: bool,
}

/// A reaction of a stoichiometric model.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// Identifier, e.g. `"biomass"`.
    pub id: String,
    /// Sparse stoichiometry: `(metabolite index, coefficient)`; negative
    /// coefficients are consumed.
    pub stoichiometry: Vec<(usize, f64)>,
    /// Flux bounds in mmol/gDW/h.
    pub bounds: Bound,
}

/// A genome-scale stoichiometric model: metabolites, reactions, flux bounds.
///
/// The model owns the sparse stoichiometric matrix `S` (rows = internal
/// metabolites, columns = reactions) used both by FBA and by the
/// steady-state-violation scoring of the multi-objective search.
#[derive(Debug, Clone, PartialEq)]
pub struct MetabolicModel {
    name: String,
    metabolites: Vec<Metabolite>,
    reactions: Vec<Reaction>,
    metabolite_index: HashMap<String, usize>,
    reaction_index: HashMap<String, usize>,
    stoichiometric_matrix: CsrMatrix,
}

impl MetabolicModel {
    /// Starts building a model.
    pub fn builder(name: impl Into<String>) -> MetabolicModelBuilder {
        MetabolicModelBuilder {
            name: name.into(),
            metabolites: Vec::new(),
            reactions: Vec::new(),
            metabolite_index: HashMap::new(),
            reaction_index: HashMap::new(),
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of metabolites (internal + boundary).
    pub fn num_metabolites(&self) -> usize {
        self.metabolites.len()
    }

    /// Number of reactions.
    pub fn num_reactions(&self) -> usize {
        self.reactions.len()
    }

    /// Metabolites in insertion order.
    pub fn metabolites(&self) -> &[Metabolite] {
        &self.metabolites
    }

    /// Reactions in insertion order.
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// Index of a metabolite by id.
    pub fn metabolite_index(&self, id: &str) -> Option<usize> {
        self.metabolite_index.get(id).copied()
    }

    /// Index of a reaction by id.
    pub fn reaction_index(&self, id: &str) -> Option<usize> {
        self.reaction_index.get(id).copied()
    }

    /// The sparse stoichiometric matrix over internal (non-boundary)
    /// metabolites: rows follow the metabolite order restricted to internal
    /// species, columns follow the reaction order.
    pub fn stoichiometric_matrix(&self) -> &CsrMatrix {
        &self.stoichiometric_matrix
    }

    /// Per-reaction flux bounds, in reaction order.
    pub fn flux_bounds(&self) -> Vec<Bound> {
        self.reactions.iter().map(|r| r.bounds).collect()
    }

    /// Pins a reaction's flux to a fixed value (e.g. the ATP maintenance flux
    /// held at 0.45 in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`FbaError::UnknownName`] if the reaction does not exist.
    pub fn pin_reaction(&mut self, id: &str, value: f64) -> Result<(), FbaError> {
        let index = self
            .reaction_index(id)
            .ok_or_else(|| FbaError::UnknownName(id.to_string()))?;
        self.reactions[index].bounds = Bound::fixed(value);
        Ok(())
    }
}

impl fmt::Display for MetabolicModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} metabolites, {} reactions",
            self.name,
            self.num_metabolites(),
            self.num_reactions()
        )
    }
}

/// Incremental builder for [`MetabolicModel`].
#[derive(Debug, Clone)]
pub struct MetabolicModelBuilder {
    name: String,
    metabolites: Vec<Metabolite>,
    reactions: Vec<Reaction>,
    metabolite_index: HashMap<String, usize>,
    reaction_index: HashMap<String, usize>,
}

impl MetabolicModelBuilder {
    /// Adds a metabolite and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the id is already present.
    pub fn add_metabolite(&mut self, id: impl Into<String>, boundary: bool) -> usize {
        let id = id.into();
        assert!(
            !self.metabolite_index.contains_key(&id),
            "duplicate metabolite id: {id}"
        );
        let index = self.metabolites.len();
        self.metabolite_index.insert(id.clone(), index);
        self.metabolites.push(Metabolite { id, boundary });
        index
    }

    /// Adds a reaction and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the id is already present or a metabolite index is out of
    /// range.
    pub fn add_reaction(
        &mut self,
        id: impl Into<String>,
        stoichiometry: &[(usize, f64)],
        bounds: Bound,
    ) -> usize {
        let id = id.into();
        assert!(
            !self.reaction_index.contains_key(&id),
            "duplicate reaction id: {id}"
        );
        for &(m, _) in stoichiometry {
            assert!(
                m < self.metabolites.len(),
                "metabolite index {m} out of range"
            );
        }
        let index = self.reactions.len();
        self.reaction_index.insert(id.clone(), index);
        self.reactions.push(Reaction {
            id,
            stoichiometry: stoichiometry.to_vec(),
            bounds,
        });
        index
    }

    /// Finalizes the model, building the internal stoichiometric matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FbaError::InvalidModel`] if the model has no reactions or no
    /// internal metabolites.
    pub fn build(self) -> Result<MetabolicModel, FbaError> {
        if self.reactions.is_empty() {
            return Err(FbaError::InvalidModel("model has no reactions".into()));
        }
        // Map internal metabolites to dense row indices.
        let internal: Vec<usize> = self
            .metabolites
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.boundary)
            .map(|(i, _)| i)
            .collect();
        if internal.is_empty() {
            return Err(FbaError::InvalidModel(
                "model has no internal metabolites".into(),
            ));
        }
        let row_of: HashMap<usize, usize> = internal
            .iter()
            .enumerate()
            .map(|(row, &met)| (met, row))
            .collect();
        let mut triplets = Vec::new();
        for (col, reaction) in self.reactions.iter().enumerate() {
            for &(met, coeff) in &reaction.stoichiometry {
                if let Some(&row) = row_of.get(&met) {
                    triplets.push((row, col, coeff));
                }
            }
        }
        let stoichiometric_matrix =
            CsrMatrix::from_triplets(internal.len(), self.reactions.len(), &triplets)
                .map_err(|e| FbaError::InvalidModel(e.to_string()))?;
        Ok(MetabolicModel {
            name: self.name,
            metabolites: self.metabolites,
            reactions: self.reactions,
            metabolite_index: self.metabolite_index,
            reaction_index: self.reaction_index,
            stoichiometric_matrix,
        })
    }
}

#[cfg(test)]
pub(crate) mod test_models {
    //! A small hand-built model shared by the crate's tests:
    //!
    //! ```text
    //!   uptake:   (boundary) -> A           0 <= v <= 10
    //!   convert:  A -> B                    0 <= v <= 10
    //!   biomass:  B -> (boundary)           0 <= v <= 10
    //!   leak:     A -> (boundary)           0 <= v <= 1
    //! ```
    use super::*;

    pub fn toy_model() -> MetabolicModel {
        let mut builder = MetabolicModel::builder("toy");
        let a = builder.add_metabolite("A", false);
        let b = builder.add_metabolite("B", false);
        let external = builder.add_metabolite("X_ext", true);
        builder.add_reaction(
            "uptake",
            &[(external, -1.0), (a, 1.0)],
            Bound::interval(0.0, 10.0),
        );
        builder.add_reaction(
            "convert",
            &[(a, -1.0), (b, 1.0)],
            Bound::interval(0.0, 10.0),
        );
        builder.add_reaction(
            "biomass",
            &[(b, -1.0), (external, 1.0)],
            Bound::interval(0.0, 10.0),
        );
        builder.add_reaction(
            "leak",
            &[(a, -1.0), (external, 1.0)],
            Bound::interval(0.0, 1.0),
        );
        builder.build().expect("toy model is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::test_models::toy_model;
    use super::*;

    #[test]
    fn builder_produces_consistent_indices() {
        let model = toy_model();
        assert_eq!(model.num_metabolites(), 3);
        assert_eq!(model.num_reactions(), 4);
        assert_eq!(model.metabolite_index("A"), Some(0));
        assert_eq!(model.reaction_index("biomass"), Some(2));
        assert_eq!(model.reaction_index("missing"), None);
        assert!(model.to_string().contains("toy"));
    }

    #[test]
    fn stoichiometric_matrix_only_covers_internal_metabolites() {
        let model = toy_model();
        let s = model.stoichiometric_matrix();
        assert_eq!(s.rows(), 2); // A and B, not the boundary species
        assert_eq!(s.cols(), 4);
        assert_eq!(s.get(0, 0), 1.0); // uptake produces A
        assert_eq!(s.get(0, 1), -1.0); // convert consumes A
        assert_eq!(s.get(1, 2), -1.0); // biomass consumes B
    }

    #[test]
    fn pin_reaction_fixes_bounds() {
        let mut model = toy_model();
        model.pin_reaction("leak", 0.45).unwrap();
        let bounds = model.flux_bounds();
        assert_eq!(bounds[3].lower, 0.45);
        assert_eq!(bounds[3].upper, 0.45);
        assert!(model.pin_reaction("nope", 1.0).is_err());
    }

    #[test]
    fn empty_models_are_rejected() {
        let builder = MetabolicModel::builder("empty");
        assert!(matches!(builder.build(), Err(FbaError::InvalidModel(_))));
        let mut only_boundary = MetabolicModel::builder("boundary-only");
        let x = only_boundary.add_metabolite("X", true);
        only_boundary.add_reaction("r", &[(x, 1.0)], Bound::non_negative());
        assert!(matches!(
            only_boundary.build(),
            Err(FbaError::InvalidModel(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate metabolite id")]
    fn duplicate_metabolite_panics() {
        let mut builder = MetabolicModel::builder("dup");
        builder.add_metabolite("A", false);
        builder.add_metabolite("A", false);
    }

    #[test]
    #[should_panic(expected = "duplicate reaction id")]
    fn duplicate_reaction_panics() {
        let mut builder = MetabolicModel::builder("dup");
        let a = builder.add_metabolite("A", false);
        builder.add_reaction("r", &[(a, 1.0)], Bound::non_negative());
        builder.add_reaction("r", &[(a, -1.0)], Bound::non_negative());
    }
}
