//! Constraint-based metabolic modelling: stoichiometric models, flux balance
//! analysis (FBA) and a synthetic genome-scale model of *Geobacter
//! sulfurreducens*.
//!
//! This crate is the second evaluation substrate of *Design of Robust
//! Metabolic Pathways* (Umeton et al., DAC 2011). The paper optimizes the 608
//! reaction fluxes of the Mahadevan et al. (2006) *G. sulfurreducens*
//! reconstruction for two conflicting objectives — biomass production and
//! electron production — while preferring steady-state solutions
//! (`S·x̄ = 0`) and keeping the ATP maintenance flux pinned at 0.45.
//!
//! Because the original reconstruction is not redistributable, the
//! [`geobacter`] module generates a deterministic synthetic model with the
//! same dimensions and the same structural features (biomass reaction,
//! electron-transfer exchange, pinned ATP maintenance, mass-balanced internal
//! redundancy); see `DESIGN.md` for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use pathway_fba::{FluxBalanceAnalysis, geobacter::GeobacterModel};
//!
//! # fn main() -> Result<(), pathway_fba::FbaError> {
//! let model = GeobacterModel::builder().reactions(120).build().into_model();
//! let fba = FluxBalanceAnalysis::new(&model);
//! let solution = fba.maximize_reaction(model.reaction_index("biomass").unwrap())?;
//! assert!(solution.objective_value >= 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod error;
mod fba;
mod model;
mod perturb;
mod violation;

pub mod geobacter;

pub use error::FbaError;
pub use fba::{FbaSolution, FluxBalanceAnalysis, FluxVariability};
pub use model::{MetabolicModel, MetabolicModelBuilder, Metabolite, Reaction};
pub use perturb::{FluxPerturbation, FluxRepair};
pub use violation::{
    steady_state_violation, steady_state_violation_batch, violation_norm, ViolationPenalty,
};
