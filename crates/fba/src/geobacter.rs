//! A synthetic genome-scale model of *Geobacter sulfurreducens*.
//!
//! The paper optimizes the 608 reaction fluxes of the Mahadevan et al. (2006)
//! reconstruction. That reconstruction is not redistributable, so this module
//! generates a deterministic synthetic stand-in with the same dimensions and
//! the same structural features the experiment exercises:
//!
//! * an acetate uptake bound that limits the available carbon and electrons,
//! * an electron-transfer (Fe(III) reduction) flux — the paper's *electron
//!   production* objective,
//! * a biomass reaction — the paper's *biomass production* objective — that
//!   competes with electron transfer for carbon and reducing equivalents,
//! * an ATP maintenance flux pinned at 0.45 mmol/gDW/h,
//! * hundreds of mass-balanced, reversible internal reactions providing the
//!   redundancy a genome-scale network has.
//!
//! The calibration reproduces the *shape* of the paper's Figure 4: maximum
//! biomass production around 0.30 h⁻¹, electron production around 155–165
//! mmol/gDW/h near that optimum, and a trade-off slope of roughly 160 units of
//! electron production per unit of biomass production.

use pathway_linalg::Bound;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FbaError, FluxBalanceAnalysis, MetabolicModel};

/// Default number of reactions, matching the Mahadevan et al. reconstruction.
pub const GEOBACTER_REACTIONS: usize = 608;

/// ATP maintenance flux the paper keeps fixed (mmol/gDW/h).
pub const ATP_MAINTENANCE_FLUX: f64 = 0.45;

/// Builder for [`GeobacterModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeobacterBuilder {
    reactions: usize,
    seed: u64,
    acetate_uptake_limit: f64,
    ammonium_uptake_limit: f64,
}

impl Default for GeobacterBuilder {
    fn default() -> Self {
        GeobacterBuilder {
            reactions: GEOBACTER_REACTIONS,
            seed: 0x6E0B,
            acetate_uptake_limit: 25.8,
            ammonium_uptake_limit: 0.3,
        }
    }
}

impl GeobacterBuilder {
    /// Sets the total number of reactions (backbone + synthetic redundancy).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 16 reactions are requested (the backbone needs
    /// room).
    #[must_use]
    pub fn reactions(mut self, reactions: usize) -> Self {
        assert!(
            reactions >= 16,
            "the synthetic model needs at least 16 reactions"
        );
        self.reactions = reactions;
        self
    }

    /// Sets the seed of the deterministic redundancy generator.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the acetate uptake bound (mmol/gDW/h), the main carbon/electron limit.
    #[must_use]
    pub fn acetate_uptake_limit(mut self, limit: f64) -> Self {
        self.acetate_uptake_limit = limit;
        self
    }

    /// Builds the synthetic model.
    pub fn build(self) -> GeobacterModel {
        let mut builder = MetabolicModel::builder("geobacter-sulfurreducens-synthetic");

        // Boundary species.
        let ac_ext = builder.add_metabolite("ac_ext", true);
        let fe3_ext = builder.add_metabolite("fe3_ext", true);
        let nh4_ext = builder.add_metabolite("nh4_ext", true);
        let biomass_ext = builder.add_metabolite("biomass_ext", true);
        let sink_ext = builder.add_metabolite("sink_ext", true);

        // Core internal species.
        let acetate = builder.add_metabolite("ac_c", false);
        let nadh = builder.add_metabolite("nadh_c", false);
        let atp = builder.add_metabolite("atp_c", false);
        let nh4 = builder.add_metabolite("nh4_c", false);

        // Backbone reactions.
        builder.add_reaction(
            "acetate_uptake",
            &[(ac_ext, -1.0), (acetate, 1.0)],
            Bound::interval(0.0, self.acetate_uptake_limit),
        );
        builder.add_reaction(
            "ammonium_uptake",
            &[(nh4_ext, -1.0), (nh4, 1.0)],
            Bound::interval(0.0, self.ammonium_uptake_limit),
        );
        builder.add_reaction(
            "acetate_oxidation",
            &[(acetate, -1.0), (nadh, 8.0)],
            Bound::interval(0.0, 1000.0),
        );
        let electron = builder.add_reaction(
            "electron_transfer",
            &[(nadh, -1.0), (fe3_ext, 1.0)],
            Bound::interval(0.0, 1000.0),
        );
        builder.add_reaction(
            "atp_synthesis",
            &[(nadh, -1.0), (atp, 2.0)],
            Bound::interval(0.0, 1000.0),
        );
        let atp_maintenance = builder.add_reaction(
            "atp_maintenance",
            &[(atp, -1.0), (sink_ext, 1.0)],
            Bound::fixed(ATP_MAINTENANCE_FLUX),
        );
        let biomass = builder.add_reaction(
            "biomass",
            &[
                (acetate, -20.0),
                (nh4, -1.0),
                (atp, -2.0),
                (biomass_ext, 1.0),
            ],
            Bound::interval(0.0, 10.0),
        );

        // Synthetic redundancy: extra internal metabolites connected by
        // reversible, mass-balanced reactions. Zero flux is always feasible,
        // so they enlarge the flux space without breaking the backbone.
        let backbone_reactions = 7;
        let extra_reactions = self.reactions.saturating_sub(backbone_reactions);
        let extra_metabolites = ((extra_reactions * 4) / 5).max(4);
        let mut rng = StdRng::seed_from_u64(self.seed);
        // The synthetic redundancy lives on its own metabolite pool: every
        // generated reaction converts extra metabolites 1:1 (or 2:2), so it is
        // mass-conserving and cannot synthesize carbon, nitrogen, redox power
        // or ATP out of nothing — the backbone calibration stays intact while
        // the flux space still grows to genome scale.
        let mut extra_pool = Vec::with_capacity(extra_metabolites);
        for i in 0..extra_metabolites {
            extra_pool.push(builder.add_metabolite(format!("met_{i:04}"), false));
        }
        for i in 0..extra_reactions {
            let pairs = if rng.gen_bool(0.3) { 2 } else { 1 };
            let mut stoichiometry = Vec::with_capacity(2 * pairs);
            let mut used = std::collections::HashSet::new();
            for k in 0..(2 * pairs) {
                let met = loop {
                    let candidate = extra_pool[rng.gen_range(0..extra_pool.len())];
                    if used.insert(candidate) {
                        break candidate;
                    }
                };
                let sign = if k < pairs { -1.0 } else { 1.0 };
                stoichiometry.push((met, sign));
            }
            builder.add_reaction(
                format!("rxn_{i:04}"),
                &stoichiometry,
                Bound::interval(-1000.0, 1000.0),
            );
        }

        let model = builder
            .build()
            .expect("the synthetic Geobacter backbone is always valid");
        GeobacterModel {
            model,
            biomass_reaction: biomass,
            electron_reaction: electron,
            atp_maintenance_reaction: atp_maintenance,
        }
    }
}

/// The synthetic *G. sulfurreducens* model together with the indices of the
/// fluxes the experiments care about.
#[derive(Debug, Clone, PartialEq)]
pub struct GeobacterModel {
    model: MetabolicModel,
    biomass_reaction: usize,
    electron_reaction: usize,
    atp_maintenance_reaction: usize,
}

impl GeobacterModel {
    /// Starts a builder with the paper-scale defaults (608 reactions).
    pub fn builder() -> GeobacterBuilder {
        GeobacterBuilder::default()
    }

    /// Builds the default paper-scale model.
    pub fn paper_scale() -> Self {
        GeobacterBuilder::default().build()
    }

    /// The underlying stoichiometric model.
    pub fn model(&self) -> &MetabolicModel {
        &self.model
    }

    /// Consumes the wrapper and returns the underlying model.
    pub fn into_model(self) -> MetabolicModel {
        self.model
    }

    /// Index of the biomass production flux.
    pub fn biomass_reaction(&self) -> usize {
        self.biomass_reaction
    }

    /// Index of the electron production (Fe(III) reduction) flux.
    pub fn electron_reaction(&self) -> usize {
        self.electron_reaction
    }

    /// Index of the pinned ATP maintenance flux.
    pub fn atp_maintenance_reaction(&self) -> usize {
        self.atp_maintenance_reaction
    }

    /// Runs FBA maximizing biomass production.
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    pub fn max_biomass(&self) -> Result<crate::FbaSolution, FbaError> {
        FluxBalanceAnalysis::new(&self.model).maximize_reaction(self.biomass_reaction)
    }

    /// Runs FBA maximizing electron production.
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    pub fn max_electron(&self) -> Result<crate::FbaSolution, FbaError> {
        FluxBalanceAnalysis::new(&self.model).maximize_reaction(self.electron_reaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> GeobacterModel {
        GeobacterModel::builder().reactions(96).build()
    }

    #[test]
    fn model_has_the_requested_dimensions() {
        let model = small_model();
        assert_eq!(model.model().num_reactions(), 96);
        assert!(model.model().num_metabolites() > 50);
        let full = GeobacterModel::builder()
            .reactions(GEOBACTER_REACTIONS)
            .build();
        assert_eq!(full.model().num_reactions(), 608);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = GeobacterModel::builder().reactions(64).seed(7).build();
        let b = GeobacterModel::builder().reactions(64).seed(7).build();
        assert_eq!(a, b);
        let c = GeobacterModel::builder().reactions(64).seed(8).build();
        assert_ne!(a, c);
    }

    #[test]
    fn atp_maintenance_is_pinned_at_the_papers_value() {
        let model = small_model();
        let bounds = model.model().flux_bounds();
        let pinned = bounds[model.atp_maintenance_reaction()];
        assert_eq!(pinned.lower, ATP_MAINTENANCE_FLUX);
        assert_eq!(pinned.upper, ATP_MAINTENANCE_FLUX);
    }

    #[test]
    fn named_reactions_resolve() {
        let model = small_model();
        assert_eq!(
            model.model().reaction_index("biomass"),
            Some(model.biomass_reaction())
        );
        assert_eq!(
            model.model().reaction_index("electron_transfer"),
            Some(model.electron_reaction())
        );
    }

    #[test]
    fn fba_reaches_paper_scale_biomass_and_electron_levels() {
        let model = small_model();
        let biomass = model.max_biomass().expect("biomass FBA must be feasible");
        // Biomass is capped by the ammonium uptake bound of 0.3.
        assert!(
            biomass.objective_value > 0.25 && biomass.objective_value < 0.35,
            "max biomass was {}",
            biomass.objective_value
        );
        let electron = model.max_electron().expect("electron FBA must be feasible");
        // All acetate electrons minus the maintenance drain: about 8 * 25.8.
        assert!(
            electron.objective_value > 150.0 && electron.objective_value < 220.0,
            "max electron production was {}",
            electron.objective_value
        );
    }

    #[test]
    fn biomass_and_electron_production_trade_off() {
        let model = small_model();
        let max_biomass = model.max_biomass().unwrap();
        let max_electron = model.max_electron().unwrap();
        let electron_at_max_biomass = max_biomass.fluxes[model.electron_reaction()];
        let biomass_at_max_electron = max_electron.fluxes[model.biomass_reaction()];
        // Maximizing one objective sacrifices the other.
        assert!(electron_at_max_biomass <= max_electron.objective_value + 1e-6);
        assert!(biomass_at_max_electron <= max_biomass.objective_value + 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 16 reactions")]
    fn too_few_reactions_panics() {
        let _ = GeobacterModel::builder().reactions(4);
    }
}
