//! Steady-state constraint violation of candidate flux vectors.
//!
//! The paper's Geobacter optimization perturbs whole flux vectors and steers
//! the search towards steady-state solutions by minimizing the violation of
//! `S·x̄ = 0` (Section 3.2: the initial guess violates the constraint on the
//! order of 10⁶ and the reported solution A reduces it by a factor of ≈26.5).
//! This module provides that scoring.

use pathway_linalg::{Matrix, Vector};

use crate::{FbaError, MetabolicModel};

/// Euclidean norm of the steady-state residual `S·v` for a candidate flux
/// vector `v`.
///
/// # Errors
///
/// Returns [`FbaError::DimensionMismatch`] if `fluxes.len()` differs from the
/// model's reaction count.
pub fn steady_state_violation(model: &MetabolicModel, fluxes: &[f64]) -> Result<f64, FbaError> {
    if fluxes.len() != model.num_reactions() {
        return Err(FbaError::DimensionMismatch {
            expected: model.num_reactions(),
            found: fluxes.len(),
        });
    }
    let v = Vector::from(fluxes);
    let residual = model
        .stoichiometric_matrix()
        .mat_vec(&v)
        .map_err(FbaError::from)?;
    Ok(residual.norm2())
}

/// Number of candidates per multi-RHS tile in
/// [`steady_state_violation_batch`]. Sixteen columns keep a genome-scale
/// tile (rhs + product, ~140 KB at 608 reactions) L2-resident and under the
/// allocator's mmap threshold, while still amortizing each sparse-structure
/// traversal over 16 candidates.
const BATCH_TILE: usize = 16;

/// Steady-state residual norms of a whole **batch** of candidate flux
/// vectors, computed as sparse matrix × dense matrix products over
/// `BATCH_TILE`-wide (16-candidate) column tiles of the batch.
///
/// Semantically this is `batch.iter().map(|v| steady_state_violation(model,
/// v))`, and the results are **bit-identical** to that map (each column is
/// an independent [`pathway_linalg::CsrMatrix::mat_mul_dense`] column, which
/// adds residual contributions in exactly `mat_vec` order, and the squares
/// accumulate in the same row order `Vector::norm2` uses). The batched form
/// exists purely for speed: the sparse structure of `S` is traversed once
/// per tile instead of once per candidate, which is what lets
/// `GeobacterFluxProblem::evaluate_batch` score a whole offspring
/// generation in a handful of kernel calls.
///
/// # Errors
///
/// Returns [`FbaError::DimensionMismatch`] if any candidate's length differs
/// from the model's reaction count (checked up front; no partial result).
pub fn steady_state_violation_batch(
    model: &MetabolicModel,
    batch: &[Vec<f64>],
) -> Result<Vec<f64>, FbaError> {
    let reactions = model.num_reactions();
    for fluxes in batch {
        if fluxes.len() != reactions {
            return Err(FbaError::DimensionMismatch {
                expected: reactions,
                found: fluxes.len(),
            });
        }
    }
    let stoichiometry = model.stoichiometric_matrix();
    let metabolites = stoichiometry.rows();
    let mut norms = Vec::with_capacity(batch.len());
    // One (rhs, residuals) buffer pair serves every full-width tile — the
    // kernel runs through `mat_mul_dense_into`, so a generation-sized batch
    // allocates two matrices total instead of two per tile. The final
    // narrower tile (if any) gets its own pair.
    let mut buffers: Option<(Matrix, Matrix)> = None;
    let mut sums = [0.0f64; BATCH_TILE];
    for tile in batch.chunks(BATCH_TILE) {
        let width = tile.len();
        // A narrower chunk is always the batch's last, so swapping the
        // buffers out for right-sized ones happens at most once.
        if buffers.as_ref().is_none_or(|(rhs, _)| rhs.cols() != width) {
            buffers = Some((
                Matrix::zeros(reactions, width),
                Matrix::zeros(metabolites, width),
            ));
        }
        let (rhs, residuals) = buffers.as_mut().expect("buffers just ensured");
        // The tile's candidates become the *columns* of one dense
        // right-hand side, so the sparse kernel's inner loop runs along the
        // batch dimension in contiguous memory. Filled row-major (writes
        // contiguous, reads striped over at most BATCH_TILE candidate
        // vectors).
        for (i, row) in rhs.as_mut_slice().chunks_exact_mut(width).enumerate() {
            for (slot, fluxes) in row.iter_mut().zip(tile) {
                *slot = fluxes[i];
            }
        }
        stoichiometry
            .mat_mul_dense_into(rhs, residuals)
            .map_err(FbaError::from)?;
        // ‖column j‖₂, accumulating squares in row order — the order
        // `Vector::norm2` uses, which keeps the batch bit-identical to the
        // per-candidate path.
        let sums = &mut sums[..width];
        sums.fill(0.0);
        for r in 0..residuals.rows() {
            for (sum, &v) in sums.iter_mut().zip(residuals.row(r)) {
                *sum += v * v;
            }
        }
        norms.extend(sums.iter().map(|&s| s.sqrt()));
    }
    Ok(norms)
}

/// Sum of squared residuals (the quantity a quadratic penalty would use).
///
/// # Errors
///
/// Same as [`steady_state_violation`].
pub fn violation_norm(model: &MetabolicModel, fluxes: &[f64]) -> Result<f64, FbaError> {
    let norm = steady_state_violation(model, fluxes)?;
    Ok(norm * norm)
}

/// A reusable penalty scorer that also accounts for flux-bound violations, so
/// the optimizer can treat "how infeasible is this flux vector" as a single
/// scalar.
#[derive(Debug, Clone)]
pub struct ViolationPenalty {
    bounds: Vec<(f64, f64)>,
    /// Weight of the steady-state residual relative to bound violations.
    pub steady_state_weight: f64,
    /// Weight of the bound violations.
    pub bound_weight: f64,
}

impl ViolationPenalty {
    /// Creates a penalty scorer for a model with unit weights.
    pub fn new(model: &MetabolicModel) -> Self {
        ViolationPenalty {
            bounds: model
                .flux_bounds()
                .into_iter()
                .map(|b| (b.lower, b.upper))
                .collect(),
            steady_state_weight: 1.0,
            bound_weight: 1.0,
        }
    }

    /// Total bound violation of a flux vector (sum of overshoots).
    pub fn bound_violation(&self, fluxes: &[f64]) -> f64 {
        self.bounds
            .iter()
            .zip(fluxes.iter())
            .map(|(&(lower, upper), &v)| (lower - v).max(0.0) + (v - upper).max(0.0))
            .sum()
    }

    /// Combined penalty: weighted steady-state residual plus weighted bound
    /// violation.
    ///
    /// # Errors
    ///
    /// Same as [`steady_state_violation`].
    pub fn total(&self, model: &MetabolicModel, fluxes: &[f64]) -> Result<f64, FbaError> {
        let steady = steady_state_violation(model, fluxes)?;
        Ok(self.steady_state_weight * steady + self.bound_weight * self.bound_violation(fluxes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_models::toy_model;

    #[test]
    fn a_balanced_flux_vector_has_zero_violation() {
        let model = toy_model();
        // uptake = convert = biomass = 2, leak = 0: A and B are balanced.
        let fluxes = vec![2.0, 2.0, 2.0, 0.0];
        assert!(steady_state_violation(&model, &fluxes).unwrap() < 1e-12);
        assert!(violation_norm(&model, &fluxes).unwrap() < 1e-12);
    }

    #[test]
    fn an_unbalanced_flux_vector_is_scored() {
        let model = toy_model();
        // Uptake with nothing downstream: A accumulates at rate 5.
        let fluxes = vec![5.0, 0.0, 0.0, 0.0];
        let violation = steady_state_violation(&model, &fluxes).unwrap();
        assert!((violation - 5.0).abs() < 1e-12);
        assert!((violation_norm(&model, &fluxes).unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn violation_scales_with_the_imbalance() {
        let model = toy_model();
        let small = steady_state_violation(&model, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        let large = steady_state_violation(&model, &[10.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((large - 10.0 * small).abs() < 1e-9);
    }

    #[test]
    fn wrong_length_is_rejected() {
        let model = toy_model();
        assert!(matches!(
            steady_state_violation(&model, &[1.0, 2.0]),
            Err(FbaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn batched_violations_match_the_per_candidate_path_bit_for_bit() {
        let model = toy_model();
        let batch = vec![
            vec![2.0, 2.0, 2.0, 0.0],
            vec![5.0, 0.0, 0.0, 0.0],
            vec![1.25, -0.5, 3.75, 0.125],
            vec![0.0, 0.0, 0.0, 0.0],
        ];
        let batched = steady_state_violation_batch(&model, &batch).unwrap();
        assert_eq!(batched.len(), batch.len());
        for (fluxes, &violation) in batch.iter().zip(&batched) {
            // Exact equality, not approximate: the contract is that the
            // batched kernel reproduces the per-candidate path bit for bit.
            assert_eq!(violation, steady_state_violation(&model, fluxes).unwrap());
        }
    }

    #[test]
    fn batched_violations_validate_every_candidate_up_front() {
        let model = toy_model();
        assert_eq!(
            steady_state_violation_batch(&model, &[]).unwrap(),
            Vec::<f64>::new()
        );
        let mixed = vec![vec![2.0, 2.0, 2.0, 0.0], vec![1.0, 2.0]];
        assert!(matches!(
            steady_state_violation_batch(&model, &mixed),
            Err(FbaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn penalty_combines_bounds_and_steady_state() {
        let model = toy_model();
        let penalty = ViolationPenalty::new(&model);
        // leak bound is [0, 1]; a leak of 3 violates it by 2.
        let fluxes = vec![2.0, 2.0, 2.0, 3.0];
        assert!((penalty.bound_violation(&fluxes) - 2.0).abs() < 1e-12);
        let total = penalty.total(&model, &fluxes).unwrap();
        // Steady-state residual: A balance = 2 - 2 - 3 = -3.
        assert!(total > 2.0 + 2.9);
        // A fully consistent vector scores zero.
        assert_eq!(penalty.total(&model, &[2.0, 2.0, 2.0, 0.0]).unwrap(), 0.0);
    }
}
