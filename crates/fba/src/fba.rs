use pathway_linalg::{simplex, LinearProgram, Objective};

use crate::{FbaError, MetabolicModel};

/// Result of a flux balance analysis solve.
#[derive(Debug, Clone, PartialEq)]
pub struct FbaSolution {
    /// Optimal value of the objective flux.
    pub objective_value: f64,
    /// The full flux vector (one entry per reaction, model order).
    pub fluxes: Vec<f64>,
    /// Number of simplex pivots used.
    pub iterations: usize,
}

/// Flux variability range of one reaction at a fixed objective level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluxVariability {
    /// Minimum attainable flux.
    pub minimum: f64,
    /// Maximum attainable flux.
    pub maximum: f64,
}

/// Flux balance analysis over a [`MetabolicModel`]: maximize (or minimize) one
/// reaction flux subject to the steady-state constraint `S·v = 0` and the
/// per-reaction bounds, exactly the LP the COBRA toolbox solves.
///
/// # Example
///
/// ```
/// use pathway_fba::{FluxBalanceAnalysis, geobacter::GeobacterModel};
///
/// # fn main() -> Result<(), pathway_fba::FbaError> {
/// let model = GeobacterModel::builder().reactions(96).build().into_model();
/// let fba = FluxBalanceAnalysis::new(&model);
/// let biomass = model.reaction_index("biomass").expect("biomass reaction exists");
/// let solution = fba.maximize_reaction(biomass)?;
/// assert_eq!(solution.fluxes.len(), model.num_reactions());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FluxBalanceAnalysis<'a> {
    model: &'a MetabolicModel,
}

impl<'a> FluxBalanceAnalysis<'a> {
    /// Creates an analysis bound to a model.
    pub fn new(model: &'a MetabolicModel) -> Self {
        FluxBalanceAnalysis { model }
    }

    fn build_program(&self, objective_reaction: usize, sense: Objective) -> LinearProgram {
        let n = self.model.num_reactions();
        let mut lp = LinearProgram::new(n, sense);
        lp.set_objective_coefficient(objective_reaction, 1.0)
            .expect("objective reaction index is validated by the caller");
        for (i, bound) in self.model.flux_bounds().into_iter().enumerate() {
            lp.set_bound(i, bound).expect("model bounds are valid");
        }
        let s = self.model.stoichiometric_matrix();
        for row in 0..s.rows() {
            let coefficients: Vec<(usize, f64)> = s.row_entries(row).collect();
            if !coefficients.is_empty() {
                lp.add_equal(&coefficients, 0.0)
                    .expect("stoichiometric coefficients reference valid reactions");
            }
        }
        lp
    }

    fn solve(&self, objective_reaction: usize, sense: Objective) -> Result<FbaSolution, FbaError> {
        if objective_reaction >= self.model.num_reactions() {
            return Err(FbaError::DimensionMismatch {
                expected: self.model.num_reactions(),
                found: objective_reaction,
            });
        }
        let lp = self.build_program(objective_reaction, sense);
        let solution = simplex::solve(&lp)?;
        Ok(FbaSolution {
            objective_value: solution.objective_value,
            fluxes: solution.variables,
            iterations: solution.iterations,
        })
    }

    /// Maximizes the flux through `objective_reaction`.
    ///
    /// # Errors
    ///
    /// Returns an error if the reaction index is out of range or the LP is
    /// infeasible/unbounded.
    pub fn maximize_reaction(&self, objective_reaction: usize) -> Result<FbaSolution, FbaError> {
        self.solve(objective_reaction, Objective::Maximize)
    }

    /// Minimizes the flux through `objective_reaction`.
    ///
    /// # Errors
    ///
    /// Same as [`FluxBalanceAnalysis::maximize_reaction`].
    pub fn minimize_reaction(&self, objective_reaction: usize) -> Result<FbaSolution, FbaError> {
        self.solve(objective_reaction, Objective::Minimize)
    }

    /// Flux variability analysis of one reaction: its attainable flux range
    /// over the steady-state polytope (without constraining the objective).
    ///
    /// # Errors
    ///
    /// Same as [`FluxBalanceAnalysis::maximize_reaction`].
    pub fn variability(&self, reaction: usize) -> Result<FluxVariability, FbaError> {
        let minimum = self.minimize_reaction(reaction)?.objective_value;
        let maximum = self.maximize_reaction(reaction)?.objective_value;
        Ok(FluxVariability { minimum, maximum })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_models::toy_model;

    #[test]
    fn toy_biomass_is_limited_by_uptake() {
        let model = toy_model();
        let fba = FluxBalanceAnalysis::new(&model);
        let biomass = model.reaction_index("biomass").unwrap();
        let solution = fba.maximize_reaction(biomass).unwrap();
        assert!((solution.objective_value - 10.0).abs() < 1e-6);
        // At the optimum the whole uptake is converted, nothing leaks.
        let leak = model.reaction_index("leak").unwrap();
        assert!(solution.fluxes[leak].abs() < 1e-6);
    }

    #[test]
    fn steady_state_holds_at_the_optimum() {
        let model = toy_model();
        let fba = FluxBalanceAnalysis::new(&model);
        let solution = fba
            .maximize_reaction(model.reaction_index("biomass").unwrap())
            .unwrap();
        let s = model.stoichiometric_matrix();
        let v = pathway_linalg::Vector::from(solution.fluxes.clone());
        let residual = s.mat_vec(&v).unwrap();
        assert!(residual.norm_inf() < 1e-6);
    }

    #[test]
    fn pinning_a_reaction_propagates_to_the_solution() {
        let mut model = toy_model();
        model.pin_reaction("leak", 0.45).unwrap();
        let fba = FluxBalanceAnalysis::new(&model);
        let solution = fba
            .maximize_reaction(model.reaction_index("biomass").unwrap())
            .unwrap();
        let leak = model.reaction_index("leak").unwrap();
        assert!((solution.fluxes[leak] - 0.45).abs() < 1e-6);
        // Biomass loses exactly the pinned leak.
        assert!((solution.objective_value - 9.55).abs() < 1e-6);
    }

    #[test]
    fn minimization_and_variability() {
        let model = toy_model();
        let fba = FluxBalanceAnalysis::new(&model);
        let biomass = model.reaction_index("biomass").unwrap();
        let min = fba.minimize_reaction(biomass).unwrap();
        assert!(min.objective_value.abs() < 1e-6);
        let range = fba.variability(biomass).unwrap();
        assert!(range.minimum.abs() < 1e-6);
        assert!((range.maximum - 10.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_reaction_index_is_rejected() {
        let model = toy_model();
        let fba = FluxBalanceAnalysis::new(&model);
        assert!(matches!(
            fba.maximize_reaction(99),
            Err(FbaError::DimensionMismatch { .. })
        ));
    }
}
