use std::fmt;

use pathway_linalg::LinalgError;

/// Error type for constraint-based modelling operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FbaError {
    /// A named metabolite or reaction was not found in the model.
    UnknownName(String),
    /// The model failed a structural validation check.
    InvalidModel(String),
    /// The underlying linear program could not be solved.
    Linear(LinalgError),
    /// A flux vector had the wrong length for the model.
    DimensionMismatch {
        /// Number of reactions in the model.
        expected: usize,
        /// Length of the supplied flux vector.
        found: usize,
    },
}

impl fmt::Display for FbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FbaError::UnknownName(name) => write!(f, "unknown metabolite or reaction: {name}"),
            FbaError::InvalidModel(msg) => write!(f, "invalid metabolic model: {msg}"),
            FbaError::Linear(err) => write!(f, "linear programming failure: {err}"),
            FbaError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "flux vector length {found} does not match {expected} reactions"
                )
            }
        }
    }
}

impl std::error::Error for FbaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FbaError::Linear(err) => Some(err),
            _ => None,
        }
    }
}

impl From<LinalgError> for FbaError {
    fn from(err: LinalgError) -> Self {
        FbaError::Linear(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FbaError::UnknownName("atp".into());
        assert!(e.to_string().contains("atp"));
        let wrapped = FbaError::from(LinalgError::Infeasible);
        assert!(wrapped.to_string().contains("infeasible"));
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FbaError>();
    }
}
