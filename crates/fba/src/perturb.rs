//! Flux-vector perturbation and repair operators.
//!
//! The paper's Geobacter experiment searches the 608-dimensional flux space by
//! perturbing candidate flux vectors (rather than re-solving an LP at every
//! step) while the optimizer rewards low steady-state violation. These
//! operators produce the perturbed candidates and clamp them back inside the
//! model's flux bounds.

use pathway_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FbaError, MetabolicModel};

/// Uniform multiplicative/additive perturbation of flux vectors.
#[derive(Debug, Clone)]
pub struct FluxPerturbation {
    /// Maximum relative perturbation per flux.
    pub relative: f64,
    /// Maximum absolute perturbation per flux (applied on top of the relative
    /// one so zero fluxes can move too).
    pub absolute: f64,
    rng: StdRng,
}

impl FluxPerturbation {
    /// Creates a perturbation operator with a deterministic seed.
    pub fn new(relative: f64, absolute: f64, seed: u64) -> Self {
        FluxPerturbation {
            relative,
            absolute,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns a perturbed copy of `fluxes`.
    pub fn perturb(&mut self, fluxes: &[f64]) -> Vec<f64> {
        fluxes
            .iter()
            .map(|&v| {
                let rel = 1.0 + self.rng.gen_range(-self.relative..=self.relative);
                let abs = self.rng.gen_range(-self.absolute..=self.absolute);
                v * rel + abs
            })
            .collect()
    }

    /// Generates a random flux vector inside the model's bounds (unbounded
    /// directions are sampled within ±`absolute`·100).
    pub fn random_vector(&mut self, model: &MetabolicModel) -> Vec<f64> {
        model
            .flux_bounds()
            .into_iter()
            .map(|b| {
                let lower = if b.lower.is_finite() {
                    b.lower
                } else {
                    -self.absolute * 100.0
                };
                let upper = if b.upper.is_finite() {
                    b.upper
                } else {
                    self.absolute * 100.0
                };
                if (upper - lower).abs() < f64::EPSILON {
                    lower
                } else {
                    self.rng.gen_range(lower..=upper)
                }
            })
            .collect()
    }
}

/// Repairs flux vectors: clamps them into bounds and optionally relaxes them
/// towards the steady-state subspace with a few rounds of residual feedback.
#[derive(Debug, Clone, Copy)]
pub struct FluxRepair {
    /// Number of relaxation sweeps towards `S·v = 0`.
    pub relaxation_sweeps: usize,
    /// Step size of each relaxation sweep.
    pub relaxation_rate: f64,
}

impl Default for FluxRepair {
    fn default() -> Self {
        FluxRepair {
            relaxation_sweeps: 4,
            relaxation_rate: 0.4,
        }
    }
}

impl FluxRepair {
    /// Clamps every flux into its bounds.
    pub fn clamp_to_bounds(&self, model: &MetabolicModel, fluxes: &mut [f64]) {
        for (value, bound) in fluxes.iter_mut().zip(model.flux_bounds()) {
            *value = value.clamp(bound.lower, bound.upper);
        }
    }

    /// Clamps to bounds and then performs a few Kaczmarz sweeps towards the
    /// steady-state subspace: each internal metabolite's balance row is
    /// projected out in turn (`v ← v − (row·v / ‖row‖²)·row`, scaled by the
    /// relaxation rate), followed by re-clamping. Returns the final residual
    /// norm.
    ///
    /// # Errors
    ///
    /// Returns [`FbaError::DimensionMismatch`] if the flux vector length does
    /// not match the model.
    pub fn repair(&self, model: &MetabolicModel, fluxes: &mut [f64]) -> Result<f64, FbaError> {
        if fluxes.len() != model.num_reactions() {
            return Err(FbaError::DimensionMismatch {
                expected: model.num_reactions(),
                found: fluxes.len(),
            });
        }
        self.clamp_to_bounds(model, fluxes);
        let s = model.stoichiometric_matrix();
        let rate = self.relaxation_rate.clamp(0.0, 1.0);
        for _ in 0..self.relaxation_sweeps {
            for row in 0..s.rows() {
                let mut residual = 0.0;
                let mut row_norm = 0.0;
                for (col, coeff) in s.row_entries(row) {
                    residual += coeff * fluxes[col];
                    row_norm += coeff * coeff;
                }
                if row_norm <= 0.0 || residual == 0.0 {
                    continue;
                }
                let step = rate * residual / row_norm;
                for (col, coeff) in s.row_entries(row) {
                    fluxes[col] -= step * coeff;
                }
            }
            self.clamp_to_bounds(model, fluxes);
        }
        let v = Vector::from(&fluxes[..]);
        Ok(s.mat_vec(&v).map_err(FbaError::from)?.norm2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_models::toy_model;
    use crate::steady_state_violation;

    #[test]
    fn perturbation_stays_close_for_small_amplitudes() {
        let mut op = FluxPerturbation::new(0.01, 0.0, 1);
        let original = vec![10.0, 5.0, 0.0];
        let perturbed = op.perturb(&original);
        for (o, p) in original.iter().zip(perturbed.iter()) {
            assert!((o - p).abs() <= 0.011 * o.abs() + 1e-12);
        }
    }

    #[test]
    fn absolute_perturbation_moves_zero_fluxes() {
        let mut op = FluxPerturbation::new(0.0, 1.0, 3);
        let perturbed = op.perturb(&[0.0; 16]);
        assert!(perturbed.iter().any(|&v| v.abs() > 1e-6));
    }

    #[test]
    fn perturbation_is_reproducible_per_seed() {
        let mut a = FluxPerturbation::new(0.1, 0.5, 9);
        let mut b = FluxPerturbation::new(0.1, 0.5, 9);
        assert_eq!(a.perturb(&[1.0, 2.0, 3.0]), b.perturb(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn random_vector_respects_bounds() {
        let model = toy_model();
        let mut op = FluxPerturbation::new(0.1, 1.0, 5);
        let v = op.random_vector(&model);
        assert_eq!(v.len(), model.num_reactions());
        for (value, bound) in v.iter().zip(model.flux_bounds()) {
            assert!(*value >= bound.lower - 1e-12 && *value <= bound.upper + 1e-12);
        }
    }

    #[test]
    fn clamp_to_bounds_fixes_out_of_range_fluxes() {
        let model = toy_model();
        let repair = FluxRepair::default();
        let mut fluxes = vec![20.0, -5.0, 3.0, 0.5];
        repair.clamp_to_bounds(&model, &mut fluxes);
        assert_eq!(fluxes[0], 10.0);
        assert_eq!(fluxes[1], 0.0);
    }

    #[test]
    fn repair_reduces_the_steady_state_violation() {
        let model = toy_model();
        let repair = FluxRepair::default();
        let mut fluxes = vec![9.0, 1.0, 0.0, 0.0];
        let before = steady_state_violation(&model, &fluxes).unwrap();
        let after = repair.repair(&model, &mut fluxes).unwrap();
        assert!(
            after < before,
            "repair did not reduce the violation ({before} -> {after})"
        );
    }

    #[test]
    fn repair_checks_dimensions() {
        let model = toy_model();
        let repair = FluxRepair::default();
        let mut fluxes = vec![1.0; 2];
        assert!(matches!(
            repair.repair(&model, &mut fluxes),
            Err(FbaError::DimensionMismatch { .. })
        ));
    }
}
