//! Profile artifacts: the JSON projection of a telemetry
//! [`MetricsSnapshot`] plus its schema validator.
//!
//! The split mirrors the sweep ledger: plain-data metrics live upstream in
//! `pathway_moo::engine::telemetry`, while this module owns the
//! `profile.json` rendering (via [`crate::jsonlite`]), the atomic writer
//! behind `pathway run/sweep --profile-out`, and
//! [`validate_profile_json`] — the checker CI runs against freshly
//! emitted profiles, live `pathway metrics` snapshots, and the committed
//! `BENCH_profile.json` alike.
//!
//! # Schema (format `pathway-profile`, version 1)
//!
//! ```json
//! {
//!   "format": "pathway-profile",
//!   "version": 1,
//!   "source": "run" | "sweep" | "serve",
//!   "label": "<spec path, sweep dir, or daemon name>",
//!   "generations": 150,
//!   "evaluations": 18120,
//!   "wall_ms": 742,
//!   "phases":     [{"name": "eval", "calls": 302, "total_us": 501233}, ...],
//!   "counters":   [{"name": "exec.batches", "value": 302}, ...],
//!   "gauges":     [{"name": "exec.lanes", "value": 2.0}, ...],
//!   "histograms": [{"name": "exec.chunk_us", "bounds": [...],
//!                   "counts": [...], "count": 604, "sum": 431002.5}, ...]
//! }
//! ```
//!
//! `phases` folds the `phase.<name>.us` / `phase.<name>.calls` counter
//! pairs the span timers record; the remaining counters stay in
//! `counters`. All four arrays are sorted by name. Phase totals are CPU
//! time: archipelago islands step concurrently, so sub-phase totals can
//! legitimately exceed the `generation` phase's wall-clock total —
//! [`check_phase_balance`] therefore applies a deliberately generous
//! tolerance instead of expecting an exact partition.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use pathway_moo::engine::telemetry::{Metric, MetricsSnapshot};

use crate::jsonlite::JsonValue;

/// `format` tag of every profile document.
pub const PROFILE_FORMAT: &str = "pathway-profile";

/// Current profile schema version.
pub const PROFILE_VERSION: i64 = 1;

/// The `source` values a valid profile may carry.
pub const PROFILE_SOURCES: [&str; 3] = ["run", "sweep", "serve"];

/// Everything a profile document records besides the metrics themselves.
#[derive(Debug, Clone)]
pub struct ProfileData<'a> {
    /// Which surface produced the profile: `run`, `sweep` or `serve`.
    pub source: &'a str,
    /// Human-readable origin (spec path, sweep out-dir, daemon name).
    pub label: &'a str,
    /// Generations this invocation completed (for `serve`: across jobs).
    pub generations: u64,
    /// Candidate evaluations this invocation spent.
    pub evaluations: u64,
    /// Wall-clock of the invocation (for `serve`: daemon uptime).
    pub wall_ms: u64,
    /// The merged telemetry snapshot.
    pub snapshot: &'a MetricsSnapshot,
}

/// Saturating `u64` → JSON integer.
fn int(value: u64) -> JsonValue {
    JsonValue::Int(i64::try_from(value).unwrap_or(i64::MAX))
}

/// Renders a profile document. Deterministic: arrays are sorted by name
/// and every field is derived from the inputs alone.
pub fn profile_json(data: &ProfileData) -> JsonValue {
    // Fold the phase.<name>.us / phase.<name>.calls counter pairs.
    let mut phases: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, metric) in &data.snapshot.metrics {
        match metric {
            Metric::Counter(value) => {
                let phase_part = name
                    .strip_prefix("phase.")
                    .and_then(|rest| rest.rsplit_once('.'));
                match phase_part {
                    Some((phase, "us")) => phases.entry(phase.to_string()).or_default().1 = *value,
                    Some((phase, "calls")) => {
                        phases.entry(phase.to_string()).or_default().0 = *value;
                    }
                    _ => counters.push(JsonValue::object([
                        ("name", JsonValue::string(name.clone())),
                        ("value", int(*value)),
                    ])),
                }
            }
            Metric::Gauge(value) if value.is_finite() => gauges.push(JsonValue::object([
                ("name", JsonValue::string(name.clone())),
                ("value", JsonValue::Number(*value)),
            ])),
            Metric::Gauge(_) => {}
            Metric::Histogram(histogram) => histograms.push(JsonValue::object([
                ("name", JsonValue::string(name.clone())),
                (
                    "bounds",
                    JsonValue::Array(
                        histogram
                            .bounds
                            .iter()
                            .map(|b| JsonValue::Number(*b))
                            .collect(),
                    ),
                ),
                (
                    "counts",
                    JsonValue::Array(histogram.counts.iter().map(|c| int(*c)).collect()),
                ),
                ("count", int(histogram.count)),
                ("sum", JsonValue::Number(histogram.sum())),
            ])),
        }
    }
    let phases = phases
        .into_iter()
        .map(|(name, (calls, total_us))| {
            JsonValue::object([
                ("name", JsonValue::string(name)),
                ("calls", int(calls)),
                ("total_us", int(total_us)),
            ])
        })
        .collect();
    JsonValue::object([
        ("format", JsonValue::string(PROFILE_FORMAT)),
        ("version", JsonValue::Int(PROFILE_VERSION)),
        ("source", JsonValue::string(data.source)),
        ("label", JsonValue::string(data.label)),
        ("generations", int(data.generations)),
        ("evaluations", int(data.evaluations)),
        ("wall_ms", int(data.wall_ms)),
        ("phases", JsonValue::Array(phases)),
        ("counters", JsonValue::Array(counters)),
        ("gauges", JsonValue::Array(gauges)),
        ("histograms", JsonValue::Array(histograms)),
    ])
}

/// Renders a profile as the exact bytes [`write_profile_file`] persists
/// (pretty-printed, trailing newline).
pub fn render_profile(data: &ProfileData) -> String {
    profile_json(data).to_pretty()
}

/// Writes a profile atomically: to `<path>.tmp` first (fsynced), then
/// renamed over `path` — a crash never leaves a truncated profile behind.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_profile_file(path: &Path, data: &ProfileData) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(render_profile(data).as_bytes())?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)
}

/// One folded phase of a validated profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Phase name (`generation`, `eval`, `variation`, …).
    pub name: String,
    /// How many spans were recorded.
    pub calls: u64,
    /// Total recorded time, microseconds (CPU time across threads).
    pub total_us: u64,
}

/// What [`validate_profile_json`] found in a healthy profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileCheck {
    /// The profile's `source` tag.
    pub source: String,
    /// The profile's `label`.
    pub label: String,
    /// Generations recorded.
    pub generations: u64,
    /// Evaluations recorded.
    pub evaluations: u64,
    /// Wall-clock milliseconds recorded.
    pub wall_ms: u64,
    /// The folded phase table, in document order.
    pub phases: Vec<PhaseEntry>,
}

/// Validates a `profile.json` document against the schema: format and
/// version tags, a known `source`, non-negative totals, well-formed phase
/// entries, and internally consistent histograms (ascending finite
/// bounds, `counts` one longer than `bounds`, bucket counts summing to
/// `count`). Purely structural — use [`check_phase_balance`] on the
/// result for the timing-consistency check.
///
/// # Errors
///
/// Every problem found, as one human-readable string each.
pub fn validate_profile_json(text: &str) -> Result<ProfileCheck, Vec<String>> {
    let mut problems = Vec::new();
    let document = match JsonValue::parse(text) {
        Ok(document) => document,
        Err(err) => return Err(vec![format!("not valid JSON: {err}")]),
    };
    if document.get("format").and_then(JsonValue::as_str) != Some(PROFILE_FORMAT) {
        problems.push(format!("'format' must be \"{PROFILE_FORMAT}\""));
    }
    if document.get("version").and_then(JsonValue::as_i64) != Some(PROFILE_VERSION) {
        problems.push(format!("'version' must be {PROFILE_VERSION}"));
    }
    let source = document
        .get("source")
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    if !PROFILE_SOURCES.contains(&source.as_str()) {
        problems.push(format!("'source' must be one of {PROFILE_SOURCES:?}"));
    }
    let label = match document.get("label").and_then(JsonValue::as_str) {
        Some(label) => label.to_string(),
        None => {
            problems.push("'label' must be a string".to_string());
            String::new()
        }
    };
    let mut non_negative = |key: &str| match document.get(key).and_then(JsonValue::as_i64) {
        Some(value) if value >= 0 => value as u64,
        _ => {
            problems.push(format!("'{key}' must be a non-negative integer"));
            0
        }
    };
    let generations = non_negative("generations");
    let evaluations = non_negative("evaluations");
    let wall_ms = non_negative("wall_ms");

    let mut phases = Vec::new();
    match document.get("phases").and_then(JsonValue::as_array) {
        Some(entries) => {
            for (at, entry) in entries.iter().enumerate() {
                let name = entry.get("name").and_then(JsonValue::as_str);
                let calls = entry.get("calls").and_then(JsonValue::as_i64);
                let total_us = entry.get("total_us").and_then(JsonValue::as_i64);
                match (name, calls, total_us) {
                    (Some(name), Some(calls), Some(total_us))
                        if !name.is_empty() && calls > 0 && total_us >= 0 =>
                    {
                        phases.push(PhaseEntry {
                            name: name.to_string(),
                            calls: calls as u64,
                            total_us: total_us as u64,
                        });
                    }
                    _ => problems.push(format!(
                        "phase {at}: needs a non-empty 'name', positive 'calls' and \
                         non-negative 'total_us'"
                    )),
                }
            }
        }
        None => problems.push("'phases' must be an array".to_string()),
    }

    let named_value =
        |section: &str, problems: &mut Vec<String>, check: &dyn Fn(&JsonValue) -> bool| {
            match document.get(section).and_then(JsonValue::as_array) {
                Some(entries) => {
                    for (at, entry) in entries.iter().enumerate() {
                        if entry
                            .get("name")
                            .and_then(JsonValue::as_str)
                            .is_none_or(str::is_empty)
                        {
                            problems.push(format!("{section} {at}: needs a non-empty 'name'"));
                        }
                        match entry.get("value") {
                            Some(value) if check(value) => {}
                            _ => problems.push(format!("{section} {at}: bad 'value'")),
                        }
                    }
                }
                None => problems.push(format!("'{section}' must be an array")),
            }
        };
    named_value("counters", &mut problems, &|value| {
        value.as_i64().is_some_and(|v| v >= 0)
    });
    named_value("gauges", &mut problems, &|value| {
        value.as_f64().is_some_and(f64::is_finite)
    });

    match document.get("histograms").and_then(JsonValue::as_array) {
        Some(entries) => {
            for (at, entry) in entries.iter().enumerate() {
                if entry
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .is_none_or(str::is_empty)
                {
                    problems.push(format!("histogram {at}: needs a non-empty 'name'"));
                }
                let bounds: Option<Vec<f64>> = entry
                    .get("bounds")
                    .and_then(JsonValue::as_array)
                    .map(|values| values.iter().filter_map(JsonValue::as_f64).collect());
                let counts: Option<Vec<i64>> = entry
                    .get("counts")
                    .and_then(JsonValue::as_array)
                    .map(|values| values.iter().filter_map(JsonValue::as_i64).collect());
                let (Some(bounds), Some(counts)) = (bounds, counts) else {
                    problems.push(format!(
                        "histogram {at}: needs numeric 'bounds' and 'counts' arrays"
                    ));
                    continue;
                };
                if bounds.iter().any(|b| !b.is_finite())
                    || bounds.windows(2).any(|pair| pair[0] >= pair[1])
                {
                    problems.push(format!(
                        "histogram {at}: 'bounds' must be finite and strictly ascending"
                    ));
                }
                if counts.len() != bounds.len() + 1 {
                    problems.push(format!(
                        "histogram {at}: 'counts' must hold bounds+1 buckets \
                         (got {} for {} bounds)",
                        counts.len(),
                        bounds.len()
                    ));
                }
                if counts.iter().any(|c| *c < 0) {
                    problems.push(format!("histogram {at}: negative bucket count"));
                }
                let total: i64 = counts.iter().sum();
                if entry.get("count").and_then(JsonValue::as_i64) != Some(total) {
                    problems.push(format!(
                        "histogram {at}: 'count' must equal the sum of 'counts'"
                    ));
                }
                if !entry
                    .get("sum")
                    .and_then(JsonValue::as_f64)
                    .is_some_and(f64::is_finite)
                {
                    problems.push(format!("histogram {at}: 'sum' must be a finite number"));
                }
            }
        }
        None => problems.push("'histograms' must be an array".to_string()),
    }

    if problems.is_empty() {
        Ok(ProfileCheck {
            source,
            label,
            generations,
            evaluations,
            wall_ms,
            phases,
        })
    } else {
        Err(problems)
    }
}

/// Checks that the sub-phase timings are plausible against the
/// `generation` phase total: their sum must land within a generous
/// multiplicative window (at least 1/8× and at most 16× the generation
/// total). The window is wide on purpose — sub-phases overlap (executor
/// spans run *inside* a generation) and archipelago islands record
/// concurrently (CPU time > wall time). `checkpoint_write` is excluded
/// from the sum: it is the one phase recorded *outside* the generation
/// span (the CLI and the serve scheduler both checkpoint between
/// generations) and it is fsync-bound, so its cost has no relation to
/// compute time. Profiles without a non-zero `generation` phase (e.g. an
/// idle daemon) pass trivially.
///
/// # Errors
///
/// A human-readable message naming the totals that disagree.
pub fn check_phase_balance(check: &ProfileCheck) -> Result<(), String> {
    let generation_us = check
        .phases
        .iter()
        .find(|phase| phase.name == "generation")
        .map_or(0, |phase| phase.total_us);
    if generation_us == 0 {
        return Ok(());
    }
    let others_us: u64 = check
        .phases
        .iter()
        .filter(|phase| phase.name != "generation" && phase.name != "checkpoint_write")
        .map(|phase| phase.total_us)
        .sum();
    if others_us < generation_us / 8 {
        return Err(format!(
            "sub-phase timings sum to {others_us}µs, under 1/8 of the \
             generation total {generation_us}µs — phases are not being recorded"
        ));
    }
    if others_us > generation_us.saturating_mul(16) {
        return Err(format!(
            "sub-phase timings sum to {others_us}µs, over 16× the generation \
             total {generation_us}µs — timings are implausible"
        ));
    }
    Ok(())
}

/// Phases whose old-side total is below this many microseconds are
/// reported by [`diff_profiles`] but never *gated* by
/// [`check_profile_regression`]: at sub-millisecond totals the ratio is
/// dominated by timer granularity and scheduling noise, not by code.
pub const REGRESSION_MIN_PHASE_US: u64 = 1_000;

/// One phase's before/after comparison in a [`ProfileDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Phase name.
    pub name: String,
    /// Old-side total (µs); `None` when the phase is absent there.
    pub old_total_us: Option<u64>,
    /// New-side total (µs); `None` when the phase is absent there.
    pub new_total_us: Option<u64>,
    /// Old-side per-evaluation cost (µs/eval); `None` when the phase or an
    /// evaluation count is missing.
    pub old_per_eval_us: Option<f64>,
    /// New-side per-evaluation cost (µs/eval).
    pub new_per_eval_us: Option<f64>,
    /// New/old cost ratio — per-evaluation when both sides record
    /// evaluations (so profiles of different lengths compare fairly), raw
    /// totals otherwise; `None` unless the phase exists on both sides with
    /// a positive old cost.
    pub ratio: Option<f64>,
}

/// What [`diff_profiles`] computed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Evaluations recorded by the old profile.
    pub old_evaluations: u64,
    /// Evaluations recorded by the new profile.
    pub new_evaluations: u64,
    /// Per-phase deltas over the *union* of phase names, sorted by name.
    pub phases: Vec<PhaseDelta>,
}

/// Compares two validated profiles phase by phase. Costs are normalized
/// per evaluation whenever both profiles record evaluation counts, so a
/// 150-generation baseline and a 10-generation smoke run still compare
/// like for like; with a missing count the raw totals are compared
/// directly. Deterministic: output order is the sorted union of phase
/// names.
pub fn diff_profiles(old: &ProfileCheck, new: &ProfileCheck) -> ProfileDiff {
    let fold = |check: &ProfileCheck| -> BTreeMap<String, u64> {
        check
            .phases
            .iter()
            .map(|phase| (phase.name.clone(), phase.total_us))
            .collect()
    };
    let old_phases = fold(old);
    let new_phases = fold(new);
    let per_eval = |total_us: u64, evaluations: u64| {
        (evaluations > 0).then(|| total_us as f64 / evaluations as f64)
    };
    let mut names: Vec<&String> = old_phases.keys().chain(new_phases.keys()).collect();
    names.sort();
    names.dedup();
    let phases = names
        .into_iter()
        .map(|name| {
            let old_total_us = old_phases.get(name).copied();
            let new_total_us = new_phases.get(name).copied();
            let old_per_eval_us = old_total_us.and_then(|us| per_eval(us, old.evaluations));
            let new_per_eval_us = new_total_us.and_then(|us| per_eval(us, new.evaluations));
            let ratio = match (old_per_eval_us, new_per_eval_us) {
                (Some(before), Some(after)) if before > 0.0 => Some(after / before),
                _ => match (old_total_us, new_total_us) {
                    (Some(before), Some(after)) if before > 0 => Some(after as f64 / before as f64),
                    _ => None,
                },
            };
            PhaseDelta {
                name: name.clone(),
                old_total_us,
                new_total_us,
                old_per_eval_us,
                new_per_eval_us,
                ratio,
            }
        })
        .collect();
    ProfileDiff {
        old_evaluations: old.evaluations,
        new_evaluations: new.evaluations,
        phases,
    }
}

/// Gates a [`ProfileDiff`] against a regression `threshold` (a new/old
/// cost ratio; `4.0` is a sensible CI default — generous enough to absorb
/// a baseline measured on different hardware, tight enough to catch a
/// kernel regressing by an order of magnitude). Gated phases are those
/// with a computable ratio, an old-side total of at least
/// [`REGRESSION_MIN_PHASE_US`], and a name other than `checkpoint_write`
/// (fsync-bound, unrelated to compute).
///
/// # Errors
///
/// One line per regressed phase, joined with `; `.
pub fn check_profile_regression(diff: &ProfileDiff, threshold: f64) -> Result<(), String> {
    assert!(
        threshold.is_finite() && threshold > 0.0,
        "regression threshold must be positive and finite"
    );
    let regressions: Vec<String> = diff
        .phases
        .iter()
        .filter(|delta| delta.name != "checkpoint_write")
        .filter(|delta| {
            delta
                .old_total_us
                .is_some_and(|us| us >= REGRESSION_MIN_PHASE_US)
        })
        .filter_map(|delta| {
            let ratio = delta.ratio?;
            (ratio > threshold).then(|| {
                format!(
                    "phase '{}' regressed {:.2}x (threshold {:.2}x)",
                    delta.name, ratio, threshold
                )
            })
        })
        .collect();
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(regressions.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathway_moo::engine::telemetry::MetricsRegistry;

    fn sample_profile_text() -> String {
        let registry = MetricsRegistry::new();
        registry.add("exec.batches", 4);
        registry.add("exec.candidates", 240);
        registry.add("phase.generation.us", 1000);
        registry.add("phase.generation.calls", 4);
        registry.add("phase.eval.us", 700);
        registry.add("phase.eval.calls", 4);
        registry.add("phase.variation.us", 200);
        registry.add("phase.variation.calls", 4);
        registry.set_gauge("exec.lanes", 2.0);
        registry.observe("exec.chunk_us", &[10.0, 100.0], 5.0);
        registry.observe("exec.chunk_us", &[10.0, 100.0], 50.0);
        let snapshot = registry.snapshot();
        render_profile(&ProfileData {
            source: "run",
            label: "examples/quickstart.spec",
            generations: 4,
            evaluations: 240,
            wall_ms: 12,
            snapshot: &snapshot,
        })
    }

    #[test]
    fn round_trip_through_the_validator() {
        let text = sample_profile_text();
        let check = validate_profile_json(&text).expect("valid profile");
        assert_eq!(check.source, "run");
        assert_eq!(check.label, "examples/quickstart.spec");
        assert_eq!(check.generations, 4);
        assert_eq!(check.evaluations, 240);
        assert_eq!(check.wall_ms, 12);
        assert_eq!(check.phases.len(), 3);
        let generation = check
            .phases
            .iter()
            .find(|phase| phase.name == "generation")
            .expect("generation phase folded from its counter pair");
        assert_eq!(generation.calls, 4);
        assert_eq!(generation.total_us, 1000);
        check_phase_balance(&check).expect("balanced phases");

        // The rendering is stable: re-rendering the same snapshot is
        // byte-identical.
        assert_eq!(text, sample_profile_text());
    }

    #[test]
    fn corrupted_profiles_are_rejected() {
        let text = sample_profile_text();
        assert!(validate_profile_json("{not json").is_err());
        let wrong_format = text.replace("pathway-profile", "pathway-ledger");
        assert!(validate_profile_json(&wrong_format).is_err());
        let wrong_version = text.replace("\"version\": 1", "\"version\": 99");
        assert!(validate_profile_json(&wrong_version).is_err());
        let bad_source = text.replace("\"run\"", "\"walk\"");
        assert!(validate_profile_json(&bad_source).is_err());
        let negative = text.replace("\"generations\": 4", "\"generations\": -4");
        assert!(validate_profile_json(&negative).is_err());
        // Histogram bucket counts must sum to 'count'.
        let miscounted = text.replace("\"count\": 2", "\"count\": 7");
        assert!(validate_profile_json(&miscounted).is_err());
        // Dropping a section entirely is caught too.
        let no_phases = text.replace("\"phases\"", "\"not_phases\"");
        assert!(validate_profile_json(&no_phases).is_err());
    }

    #[test]
    fn phase_balance_flags_missing_and_implausible_timings() {
        let phase = |name: &str, total_us: u64| PhaseEntry {
            name: name.to_string(),
            calls: 1,
            total_us,
        };
        let check = |phases: Vec<PhaseEntry>| ProfileCheck {
            source: "run".to_string(),
            label: String::new(),
            generations: 1,
            evaluations: 1,
            wall_ms: 1,
            phases,
        };
        // No generation phase at all: trivially balanced (idle daemon).
        check_phase_balance(&check(vec![phase("eval", 100)])).expect("no baseline");
        // Sub-phases missing: flagged.
        assert!(
            check_phase_balance(&check(vec![phase("generation", 8000), phase("eval", 10)]))
                .is_err()
        );
        // Sub-phases wildly over: flagged.
        assert!(
            check_phase_balance(&check(vec![phase("generation", 10), phase("eval", 1000)]))
                .is_err()
        );
        // Concurrency headroom: sums above the generation total pass.
        check_phase_balance(&check(vec![
            phase("generation", 1000),
            phase("eval", 1800),
            phase("variation", 300),
        ]))
        .expect("concurrent islands may exceed wall-clock");
        // checkpoint_write is out-of-generation and fsync-bound: even a
        // slow disk must not trip the balance window.
        check_phase_balance(&check(vec![
            phase("generation", 200),
            phase("eval", 150),
            phase("checkpoint_write", 500_000),
        ]))
        .expect("checkpoint writes are excluded from the balance");
    }

    fn check_with(evaluations: u64, phases: &[(&str, u64)]) -> ProfileCheck {
        ProfileCheck {
            source: "run".to_string(),
            label: "test".to_string(),
            generations: 1,
            evaluations,
            wall_ms: 1,
            phases: phases
                .iter()
                .map(|&(name, total_us)| PhaseEntry {
                    name: name.to_string(),
                    calls: 1,
                    total_us,
                })
                .collect(),
        }
    }

    #[test]
    fn diff_normalizes_per_evaluation_across_different_run_lengths() {
        // Same per-eval cost at 10x the evaluations: ratio 1.0.
        let old = check_with(100, &[("eval", 50_000)]);
        let new = check_with(1000, &[("eval", 500_000)]);
        let diff = diff_profiles(&old, &new);
        assert_eq!(diff.old_evaluations, 100);
        assert_eq!(diff.new_evaluations, 1000);
        let eval = &diff.phases[0];
        assert_eq!(eval.name, "eval");
        assert_eq!(eval.old_per_eval_us, Some(500.0));
        assert_eq!(eval.new_per_eval_us, Some(500.0));
        assert_eq!(eval.ratio, Some(1.0));
        check_profile_regression(&diff, 1.01).expect("no regression at equal cost");
    }

    #[test]
    fn diff_covers_the_union_of_phases_and_falls_back_to_raw_totals() {
        let old = check_with(0, &[("eval", 4_000), ("variation", 1_000)]);
        let new = check_with(0, &[("eval", 2_000), ("migration", 500)]);
        let diff = diff_profiles(&old, &new);
        let names: Vec<&str> = diff.phases.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["eval", "migration", "variation"]);
        let eval = &diff.phases[0];
        // No evaluation counts: raw-total ratio.
        assert_eq!(eval.old_per_eval_us, None);
        assert_eq!(eval.ratio, Some(0.5));
        // One-sided phases carry no ratio and never gate.
        assert_eq!(diff.phases[1].ratio, None);
        assert_eq!(diff.phases[2].ratio, None);
        check_profile_regression(&diff, 4.0).expect("one-sided phases pass");
    }

    #[test]
    fn regression_gate_fires_on_large_ratios_but_ignores_noise_phases() {
        // A 5x regression on a substantial phase trips a 4x threshold.
        let old = check_with(100, &[("eval", 100_000)]);
        let new = check_with(100, &[("eval", 500_000)]);
        let err = check_profile_regression(&diff_profiles(&old, &new), 4.0)
            .expect_err("5x regression must fail the 4x gate");
        assert!(err.contains("'eval'"), "message names the phase: {err}");
        assert!(check_profile_regression(&diff_profiles(&old, &new), 5.5).is_ok());

        // Sub-millisecond phases are reported but not gated.
        let old = check_with(100, &[("tiny", REGRESSION_MIN_PHASE_US - 1)]);
        let new = check_with(100, &[("tiny", 900_000)]);
        let diff = diff_profiles(&old, &new);
        assert!(diff.phases[0].ratio.is_some(), "delta is still reported");
        check_profile_regression(&diff, 4.0).expect("noise floor filters the gate");

        // checkpoint_write is fsync-bound and never gated.
        let old = check_with(100, &[("checkpoint_write", 100_000)]);
        let new = check_with(100, &[("checkpoint_write", 900_000)]);
        check_profile_regression(&diff_profiles(&old, &new), 4.0)
            .expect("checkpoint_write is exempt");
    }

    #[test]
    fn profile_file_write_is_atomic_and_valid() {
        let dir = std::env::temp_dir().join(format!("pathway-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("profile.json");
        let registry = MetricsRegistry::new();
        registry.add("phase.generation.us", 10);
        registry.add("phase.generation.calls", 1);
        registry.add("phase.eval.us", 8);
        registry.add("phase.eval.calls", 1);
        let snapshot = registry.snapshot();
        write_profile_file(
            &path,
            &ProfileData {
                source: "run",
                label: "test",
                generations: 1,
                evaluations: 10,
                wall_ms: 1,
                snapshot: &snapshot,
            },
        )
        .expect("profile written");
        let text = std::fs::read_to_string(&path).expect("profile readable");
        validate_profile_json(&text).expect("written profile validates");
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
