use pathway_moo::MultiObjectiveProblem;
use pathway_photosynthesis::{EnzymePartition, Scenario, UptakeModel};

/// The paper's leaf-redesign problem: choose the catalytic capacities of the
/// 23 carbon-metabolism enzymes so that CO₂ uptake is maximized while the
/// protein-nitrogen investment is minimized.
///
/// Objectives (both minimized, as required by the optimizer):
///
/// 1. `-uptake` — negated CO₂ uptake in µmol m⁻² s⁻¹;
/// 2. `nitrogen` — total protein nitrogen in mg/l.
///
/// # Example
///
/// ```
/// use pathway_core::LeafRedesignProblem;
/// use pathway_moo::MultiObjectiveProblem;
/// use pathway_photosynthesis::{EnzymePartition, Scenario};
///
/// let problem = LeafRedesignProblem::new(Scenario::present_low_export());
/// let natural = problem.evaluate(EnzymePartition::natural().capacities());
/// assert!(natural[0] < 0.0);       // uptake is positive, so -uptake is negative
/// assert!(natural[1] > 100_000.0); // the natural leaf invests ~208 g/l of nitrogen
/// ```
#[derive(Debug, Clone)]
pub struct LeafRedesignProblem {
    scenario: Scenario,
    model: UptakeModel,
    bounds: Vec<(f64, f64)>,
}

impl LeafRedesignProblem {
    /// Creates the problem for a scenario with the default search box
    /// (0.02×–4× the natural capacity of each enzyme, comfortably containing
    /// the 0.05×–2× range the paper's candidates occupy).
    pub fn new(scenario: Scenario) -> Self {
        LeafRedesignProblem {
            scenario,
            model: UptakeModel::new(),
            bounds: EnzymePartition::bounds(0.02, 4.0),
        }
    }

    /// Overrides the search box as multiples of the natural capacities.
    #[must_use]
    pub fn with_bounds(mut self, lower_factor: f64, upper_factor: f64) -> Self {
        self.bounds = EnzymePartition::bounds(lower_factor, upper_factor);
        self
    }

    /// The scenario being optimized.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The uptake model used for evaluation.
    pub fn uptake_model(&self) -> &UptakeModel {
        &self.model
    }

    /// CO₂ uptake of a decision vector (convenience for reports).
    pub fn uptake(&self, x: &[f64]) -> f64 {
        self.model
            .co2_uptake(&EnzymePartition::new(x.to_vec()), &self.scenario)
    }

    /// Protein nitrogen of a decision vector (convenience for reports).
    pub fn nitrogen(&self, x: &[f64]) -> f64 {
        EnzymePartition::new(x.to_vec()).total_nitrogen()
    }
}

impl MultiObjectiveProblem for LeafRedesignProblem {
    fn num_variables(&self) -> usize {
        pathway_photosynthesis::ENZYME_COUNT
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.bounds.clone()
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let partition = EnzymePartition::new(x.to_vec());
        let result = self.model.evaluate(&partition, &self.scenario);
        vec![-result.co2_uptake, result.nitrogen]
    }

    fn name(&self) -> &str {
        "leaf-redesign"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathway_photosynthesis::EnzymeKind;

    #[test]
    fn dimensions_match_the_paper() {
        let problem = LeafRedesignProblem::new(Scenario::present_low_export());
        assert_eq!(problem.num_variables(), 23);
        assert_eq!(problem.num_objectives(), 2);
        assert_eq!(problem.bounds().len(), 23);
        assert_eq!(problem.name(), "leaf-redesign");
    }

    #[test]
    fn natural_leaf_evaluates_to_the_operating_point() {
        let problem = LeafRedesignProblem::new(Scenario::present_low_export());
        let natural = EnzymePartition::natural();
        let objectives = problem.evaluate(natural.capacities());
        assert!((-objectives[0] - problem.uptake(natural.capacities())).abs() < 1e-12);
        assert!((objectives[1] - EnzymePartition::NATURAL_NITROGEN).abs() < 1.0);
    }

    #[test]
    fn cutting_rubisco_cuts_both_objectives() {
        let problem = LeafRedesignProblem::new(Scenario::present_low_export());
        let natural = EnzymePartition::natural();
        let lean = natural.with_scaled(EnzymeKind::Rubisco, 0.4);
        let natural_obj = problem.evaluate(natural.capacities());
        let lean_obj = problem.evaluate(lean.capacities());
        // Less Rubisco: less nitrogen (objective 2 improves) but less uptake
        // (objective 1, the negated uptake, worsens) — a genuine trade-off.
        assert!(lean_obj[1] < natural_obj[1]);
        assert!(lean_obj[0] > natural_obj[0]);
    }

    #[test]
    fn custom_bounds_are_respected() {
        let problem =
            LeafRedesignProblem::new(Scenario::present_low_export()).with_bounds(0.5, 2.0);
        assert_ne!(
            LeafRedesignProblem::new(Scenario::present_low_export()).bounds(),
            problem.bounds()
        );
        let bounds = problem.bounds();
        let natural = EnzymePartition::natural();
        for (i, (lower, upper)) in bounds.iter().enumerate() {
            let nat = natural.capacities()[i];
            assert!((lower - nat * 0.5).abs() < 1e-9);
            assert!((upper - nat * 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn batched_evaluation_matches_itemwise_calls() {
        let problem = LeafRedesignProblem::new(Scenario::present_low_export());
        let natural = EnzymePartition::natural();
        let lean = natural.with_scaled(EnzymeKind::Rubisco, 0.5);
        let xs = vec![natural.capacities().to_vec(), lean.capacities().to_vec()];
        let batch = problem.evaluate_batch(&xs);
        for (x, (objectives, violation)) in xs.iter().zip(&batch) {
            assert_eq!(objectives, &problem.evaluate(x));
            assert_eq!(*violation, 0.0);
        }
    }

    #[test]
    fn problem_is_unconstrained() {
        let problem = LeafRedesignProblem::new(Scenario::present_low_export());
        assert_eq!(
            problem.constraint_violation(EnzymePartition::natural().capacities()),
            0.0
        );
    }
}
