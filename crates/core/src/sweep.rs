//! Grid sweep execution and the durable results ledger.
//!
//! [`run_sweep`] takes a parsed [`SweepSpec`], expands it, and runs every
//! cell on **one** shared persistent [`Executor`] — the pool is paid for
//! once per invocation, exactly like the `pathway run`/`resume` path. Each
//! cell checkpoints through its own [`CheckpointStore`] under
//! `<out>/cells/cell-NNNN/`, so a killed sweep resumes *only* its
//! incomplete cells, bit-identically (the engine's checkpoint/resume
//! guarantee composes cell-wise).
//!
//! Completed cells append one row to the **ledger**, which lives in two
//! synchronized forms:
//!
//! * `<out>/ledger.md` — a canonical, append-only markdown table. This is
//!   the source of truth: rows are fsynced as they land and never
//!   rewritten, so the bytes written before a kill are a strict prefix of
//!   the bytes after resume.
//! * `<out>/BENCH_sweep.json` — a machine-readable projection regenerated
//!   (atomically, write-then-rename) after every row: all cells with
//!   explicit `"never"` placeholders for work not yet run — the committed
//!   results-table idiom of the DAC linearisation repos — plus a
//!   per-scenario summary of merged-front hypervolume and coverage per
//!   method.
//!
//! Final fronts are persisted bit-exactly (IEEE-754 bits in hex) under
//! `<out>/fronts/`, which is both what the kill/resume test diffs and what
//! the summary merges.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use pathway_moo::engine::{
    CheckpointError, CheckpointStore, EngineError, MetricsRegistry, SpecError, SweepCell, SweepSpec,
};
use pathway_moo::exec::Executor;
use pathway_moo::metrics::{global_coverage, hypervolume, union_front};
use pathway_moo::Individual;

use crate::jsonlite::JsonValue;
use crate::registry::{
    resume_spec_driver_with_executor, spec_driver_with_executor, validate_spec_against_problem,
    AnyProblem,
};

/// The header line of bit-exact front files.
pub const FRONT_HEADER: &str = "pathway-front v1";

/// The `format` tag of `BENCH_sweep.json` documents.
pub const BENCH_FORMAT: &str = "pathway-bench-sweep";

/// The ledger schema version carried in `BENCH_sweep.json`.
pub const BENCH_VERSION: i64 = 1;

/// Why a sweep could not run (or resume).
#[derive(Debug)]
pub enum SweepError {
    /// The sweep or one of its cells is not a valid spec.
    Spec(SpecError),
    /// A cell checkpoint could not be written or read back.
    Checkpoint(CheckpointError),
    /// A checkpointed state does not fit its cell's optimizer.
    Engine(EngineError),
    /// Filesystem trouble, with the path that caused it.
    Io {
        /// The file or directory being accessed.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The on-disk ledger is unusable (corrupt, or belongs to a different
    /// sweep).
    Ledger(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(err) => write!(f, "{err}"),
            SweepError::Checkpoint(err) => write!(f, "{err}"),
            SweepError::Engine(err) => write!(f, "{err}"),
            SweepError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            SweepError::Ledger(message) => write!(f, "ledger: {message}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SpecError> for SweepError {
    fn from(err: SpecError) -> Self {
        SweepError::Spec(err)
    }
}

impl From<CheckpointError> for SweepError {
    fn from(err: CheckpointError) -> Self {
        SweepError::Checkpoint(err)
    }
}

impl From<EngineError> for SweepError {
    fn from(err: EngineError) -> Self {
        SweepError::Engine(err)
    }
}

fn io_err(path: &Path, error: std::io::Error) -> SweepError {
    SweepError::Io {
        path: path.to_path_buf(),
        error,
    }
}

/// One completed cell as recorded in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRow {
    /// Cell index in expansion order.
    pub cell: usize,
    /// The cell spec's content hash.
    pub spec_hash: u64,
    /// Axis coordinates as `field=value`, space-joined.
    pub coordinates: String,
    /// Problem name plus its parameters.
    pub problem: String,
    /// Optimizer kind plus any swept optimizer settings.
    pub method: String,
    /// The cell's RNG seed.
    pub seed: u64,
    /// Generations the cell ran in total.
    pub generations: usize,
    /// Candidate evaluations the cell spent in total.
    pub evaluations: usize,
    /// Size of the cell's final non-dominated front.
    pub front_size: usize,
    /// Final-front hypervolume (the cell's `reference_point`, or one
    /// derived from its own front); `None` above 3 objectives.
    pub hypervolume: Option<f64>,
    /// Wall-clock milliseconds spent *in the invocation that finished the
    /// cell* (a resumed cell's earlier partial runs are not included).
    pub wall_ms: u64,
    /// Unix timestamp (seconds) when the row was appended.
    pub unix: u64,
}

/// Progress callbacks streamed out of [`run_sweep`].
#[derive(Debug)]
pub enum SweepEvent<'a> {
    /// The ledger already holds this cell; nothing is re-run.
    CellSkipped {
        /// The completed cell.
        cell: &'a SweepCell,
    },
    /// A cell is about to run, fresh or from its newest checkpoint.
    CellStarted {
        /// The cell.
        cell: &'a SweepCell,
        /// Checkpointed generation the cell resumes from, if any.
        resumed_from: Option<usize>,
    },
    /// A cell finished and its row landed in the ledger.
    CellCompleted {
        /// The cell.
        cell: &'a SweepCell,
        /// The appended row.
        row: &'a LedgerRow,
    },
    /// `--stop-after` exhausted the generation budget mid-cell; a
    /// checkpoint was written and the sweep stopped.
    SweepInterrupted {
        /// The cell that was running.
        cell: &'a SweepCell,
        /// The generation the checkpoint captures.
        generation: usize,
    },
}

/// What [`run_sweep`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Total cells in the grid.
    pub cells: usize,
    /// Cells completed by *this* invocation.
    pub completed: usize,
    /// Cells skipped because the ledger already had their rows.
    pub skipped: usize,
    /// The cell left mid-run by an exhausted `--stop-after` budget.
    pub interrupted: Option<usize>,
    /// Ledger rows on disk after this invocation.
    pub rows_total: usize,
    /// Path of the canonical text ledger.
    pub ledger_path: PathBuf,
    /// Path of the machine-readable ledger.
    pub json_path: PathBuf,
}

/// Runs every incomplete cell of `sweep` under `out_dir`, sharing one
/// `executor` across the whole grid.
///
/// `stop_after` bounds the total generations advanced by **this
/// invocation** (across cells); when it runs out mid-cell the cell is
/// checkpointed and the sweep returns with
/// [`interrupted`](SweepReport::interrupted) set — re-running the same
/// sweep resumes exactly there. Cells already in the ledger are skipped,
/// never re-run.
///
/// # Errors
///
/// [`SweepError`] on invalid cells, checkpoint/ledger corruption, or I/O
/// failure. A failed sweep can always be re-run: completed rows stay.
pub fn run_sweep(
    sweep: &SweepSpec,
    out_dir: &Path,
    executor: Arc<Executor>,
    stop_after: Option<usize>,
    progress: &mut dyn FnMut(SweepEvent<'_>),
) -> Result<SweepReport, SweepError> {
    run_sweep_with_metrics(sweep, out_dir, executor, stop_after, None, progress)
}

/// [`run_sweep`] with telemetry: when `metrics` is set, the registry is
/// installed on the shared executor, attached to every cell's driver (phase
/// spans accumulate across cells), and each completed or interrupted cell
/// dumps its problem's oracle counters into it. Telemetry is observational:
/// results, checkpoints and the ledger are bit-identical with or without a
/// registry.
///
/// # Errors
///
/// Same as [`run_sweep`].
pub fn run_sweep_with_metrics(
    sweep: &SweepSpec,
    out_dir: &Path,
    executor: Arc<Executor>,
    stop_after: Option<usize>,
    metrics: Option<&MetricsRegistry>,
    progress: &mut dyn FnMut(SweepEvent<'_>),
) -> Result<SweepReport, SweepError> {
    if let Some(registry) = metrics {
        executor.set_metrics(registry.clone());
    }
    let cells = sweep.expand()?;
    let fronts_dir = out_dir.join("fronts");
    std::fs::create_dir_all(&fronts_dir).map_err(|err| io_err(&fronts_dir, err))?;
    let mut ledger = Ledger::open(out_dir, sweep, &cells)?;
    // Even a sweep interrupted in its first cell leaves a valid JSON
    // ledger behind (all placeholders).
    ledger.write_json(sweep, &cells, &fronts_dir)?;

    let mut report = SweepReport {
        cells: cells.len(),
        completed: 0,
        skipped: 0,
        interrupted: None,
        rows_total: ledger.rows.len(),
        ledger_path: ledger.text_path.clone(),
        json_path: ledger.json_path.clone(),
    };
    let mut remaining = stop_after;
    for cell in &cells {
        if ledger.has(cell.index, cell.spec.content_hash()) {
            report.skipped += 1;
            progress(SweepEvent::CellSkipped { cell });
            continue;
        }
        let problem = AnyProblem::from_spec(&cell.spec.problem)?;
        validate_spec_against_problem(&cell.spec, &problem)?;
        let store_dir = out_dir.join("cells").join(cell.label());
        let store = CheckpointStore::create(&store_dir, &cell.spec)?;
        // The sweep renders its own progress; the per-cell [observe] sink
        // is stripped exactly like the CLI does for single runs. The
        // checkpoint store (and thus every spec hash on disk) still uses
        // the cell's original spec.
        let mut exec_spec = cell.spec.clone();
        exec_spec.log_every = None;
        let started = Instant::now();
        let (mut driver, resumed_from) = match store.latest()? {
            Some(path) => {
                let stored = CheckpointStore::load_matching(&path, &cell.spec)?;
                let generation = stored.generation();
                let driver = resume_spec_driver_with_executor(
                    &exec_spec,
                    &problem,
                    stored.checkpoint,
                    executor.clone(),
                )?;
                (driver, Some(generation))
            }
            None => (
                spec_driver_with_executor(&exec_spec, &problem, executor.clone()),
                None,
            ),
        };
        if let Some(registry) = metrics {
            driver = driver.with_metrics(registry.clone());
        }
        progress(SweepEvent::CellStarted { cell, resumed_from });
        loop {
            if driver.should_stop() {
                break;
            }
            if remaining == Some(0) {
                {
                    let _span = metrics.map(|m| m.phase("checkpoint_write"));
                    store.save(&driver.checkpoint())?;
                }
                if let Some(registry) = metrics {
                    problem.record_oracle_metrics(registry);
                }
                progress(SweepEvent::SweepInterrupted {
                    cell,
                    generation: driver.generation(),
                });
                report.interrupted = Some(cell.index);
                report.rows_total = ledger.rows.len();
                return Ok(report);
            }
            let mut budget = usize::MAX;
            if cell.spec.checkpoint_every > 0 {
                budget =
                    cell.spec.checkpoint_every - driver.generation() % cell.spec.checkpoint_every;
            }
            if let Some(left) = remaining {
                budget = budget.min(left);
            }
            let ran = driver.run_for(budget);
            if let Some(left) = &mut remaining {
                *left -= ran.min(*left);
            }
            if ran == 0 {
                break;
            }
            if cell.spec.checkpoint_every > 0
                && driver
                    .generation()
                    .is_multiple_of(cell.spec.checkpoint_every)
            {
                let _span = metrics.map(|m| m.phase("checkpoint_write"));
                store.save(&driver.checkpoint())?;
            }
            if ran < budget {
                break;
            }
        }
        // One final checkpoint so the finished cell is durable and
        // inspectable like any single run.
        {
            let _span = metrics.map(|m| m.phase("checkpoint_write"));
            store.save(&driver.checkpoint())?;
        }
        let front = driver.front();
        let front_path = fronts_dir.join(format!("{}.front", cell.label()));
        write_front_file(&front_path, &front).map_err(|err| io_err(&front_path, err))?;
        let objectives: Vec<Vec<f64>> = front
            .iter()
            .map(|individual| individual.objectives.clone())
            .collect();
        let row = LedgerRow {
            cell: cell.index,
            spec_hash: cell.spec.content_hash(),
            coordinates: cell.coordinates_string(),
            problem: scenario_of(cell),
            method: method_of(cell),
            seed: cell.spec.seed,
            generations: driver.generation(),
            evaluations: driver.optimizer().evaluations(),
            front_size: front.len(),
            hypervolume: cell_hypervolume(&cell.spec.reference_point, &objectives),
            wall_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
            unix: now_unix(),
        };
        ledger.append(row)?;
        ledger.write_json(sweep, &cells, &fronts_dir)?;
        if let Some(registry) = metrics {
            problem.record_oracle_metrics(registry);
        }
        report.completed += 1;
        progress(SweepEvent::CellCompleted {
            cell,
            row: ledger.rows.last().expect("row appended just above"),
        });
    }
    report.rows_total = ledger.rows.len();
    Ok(report)
}

/// The scenario a cell belongs to: problem name plus its parameters
/// (`zdt1 variables=6`). Cells of one scenario share a merged global front
/// in the summary.
fn scenario_of(cell: &SweepCell) -> String {
    let mut out = cell.spec.problem.name.clone();
    for (key, value) in &cell.spec.problem.params {
        out.push_str(&format!(" {key}={value}"));
    }
    out
}

/// The method a cell ran: optimizer kind plus any *swept* optimizer
/// settings other than the kind itself (`nsga2 population=50`), so grid
/// axes over optimizer configuration stay distinguishable in the summary.
fn method_of(cell: &SweepCell) -> String {
    let mut out = cell.spec.optimizer.kind().to_string();
    for (field, value) in &cell.coordinates {
        if let Some(key) = field.strip_prefix("optimizer.") {
            if key != "kind" {
                out.push_str(&format!(" {key}={value}"));
            }
        }
    }
    out
}

fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|elapsed| elapsed.as_secs())
        .unwrap_or(0)
}

/// Hypervolume of a final front: against the spec's reference point when
/// set, else against a reference derived from the front itself (per
/// objective: max + 10% of the span). `None` above 3 objectives, where the
/// exact metric is not implemented.
fn cell_hypervolume(reference: &Option<Vec<f64>>, objectives: &[Vec<f64>]) -> Option<f64> {
    let dim = match objectives.first() {
        Some(point) => point.len(),
        None => return Some(0.0),
    };
    if !(2..=3).contains(&dim) {
        return None;
    }
    let reference = reference
        .clone()
        .unwrap_or_else(|| derived_reference(objectives));
    Some(hypervolume(objectives, &reference))
}

/// A deterministic reference point for merged-front comparisons: per
/// objective, the maximum over `points` plus 10% of the observed span
/// (or +1 when the span is degenerate).
fn derived_reference(points: &[Vec<f64>]) -> Vec<f64> {
    let dim = points.first().map_or(0, Vec::len);
    (0..dim)
        .map(|d| {
            let max = points
                .iter()
                .map(|p| p[d])
                .fold(f64::NEG_INFINITY, f64::max);
            let min = points.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
            let span = max - min;
            if span > 0.0 && span.is_finite() {
                max + 0.1 * span
            } else {
                max + 1.0
            }
        })
        .collect()
}

/// Writes a front bit-exactly: one line per solution, every `f64` rendered
/// as its IEEE-754 bits in hex, so two fronts are equal iff the files are
/// byte-identical. Kill/resume tests — single-run and sweep alike — diff
/// these files; [`read_front_objectives`] reads them back losslessly.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_front_file(path: &Path, front: &[Individual]) -> std::io::Result<()> {
    let out = render_front(front);
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())?;
    file.sync_all()
}

/// Renders a front in the exact [`write_front_file`] format without
/// touching the filesystem. `pathway serve` uses this for `fetch-front`
/// responses, so a front fetched over the wire is byte-identical to the
/// file a `pathway run --front-out` of the same spec would have written.
pub fn render_front(front: &[Individual]) -> String {
    let mut out = String::with_capacity(front.len() * 64 + 32);
    out.push_str(FRONT_HEADER);
    out.push('\n');
    for individual in front {
        let hex = |values: &[f64]| {
            values
                .iter()
                .map(|v| format!("{:016x}", v.to_bits()))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(
            "x={} f={} c={:016x}\n",
            hex(&individual.variables),
            hex(&individual.objectives),
            individual.violation.to_bits()
        ));
    }
    out
}

/// Reads the objective vectors back out of a [`write_front_file`] file,
/// bit-for-bit.
///
/// # Errors
///
/// `InvalidData` when the file does not follow the front format.
pub fn read_front_objectives(path: &Path) -> std::io::Result<Vec<Vec<f64>>> {
    let bad = |message: String| std::io::Error::new(std::io::ErrorKind::InvalidData, message);
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some(FRONT_HEADER) {
        return Err(bad(format!("missing '{FRONT_HEADER}' header")));
    }
    let mut fronts = Vec::new();
    for line in lines {
        let field = line
            .split_whitespace()
            .find_map(|token| token.strip_prefix("f="))
            .ok_or_else(|| bad(format!("front line without f= field: '{line}'")))?;
        let objectives = field
            .split(',')
            .map(|hex| u64::from_str_radix(hex, 16).map(f64::from_bits))
            .collect::<Result<Vec<f64>, _>>()
            .map_err(|_| bad(format!("bad objective bits in '{line}'")))?;
        fronts.push(objectives);
    }
    Ok(fronts)
}

/// The durable results ledger: `ledger.md` (append-only source of truth)
/// plus its `BENCH_sweep.json` projection.
struct Ledger {
    text_path: PathBuf,
    json_path: PathBuf,
    rows: Vec<LedgerRow>,
}

const LEDGER_COLUMNS: &str =
    "| cell | spec-hash | coordinates | problem | method | seed | gens | evals | front | hypervolume | wall-ms | unix |";

impl Ledger {
    /// Opens (or creates) the ledger under `out_dir`, refusing one written
    /// by a different sweep.
    fn open(out_dir: &Path, sweep: &SweepSpec, cells: &[SweepCell]) -> Result<Self, SweepError> {
        std::fs::create_dir_all(out_dir).map_err(|err| io_err(out_dir, err))?;
        let text_path = out_dir.join("ledger.md");
        let json_path = out_dir.join("BENCH_sweep.json");
        if text_path.exists() {
            let text =
                std::fs::read_to_string(&text_path).map_err(|err| io_err(&text_path, err))?;
            let (hash, rows) = parse_ledger(&text).map_err(SweepError::Ledger)?;
            if hash != sweep.content_hash() {
                return Err(SweepError::Ledger(format!(
                    "{} was written by a different sweep (hash {hash:#018x}, this sweep is {:#018x}); \
                     use a fresh --out-dir",
                    text_path.display(),
                    sweep.content_hash()
                )));
            }
            for row in &rows {
                if row.cell >= cells.len() {
                    return Err(SweepError::Ledger(format!(
                        "{} holds a row for cell {} but the grid has only {} cells",
                        text_path.display(),
                        row.cell,
                        cells.len()
                    )));
                }
            }
            return Ok(Ledger {
                text_path,
                json_path,
                rows,
            });
        }
        let mut header = String::new();
        header.push_str("# pathway sweep ledger\n\n");
        header.push_str(&format!("- sweep-hash: {:#018x}\n", sweep.content_hash()));
        header.push_str(&format!("- cells: {}\n", cells.len()));
        for axis in &sweep.axes {
            header.push_str(&format!(
                "- axis: {} = {}\n",
                axis.field,
                axis.values.join(" | ")
            ));
        }
        header.push('\n');
        header.push_str(LEDGER_COLUMNS);
        header.push('\n');
        header.push_str(
            "|-----:|-----------|-------------|---------|--------|-----:|-----:|------:|------:|------------:|--------:|-----:|\n",
        );
        std::fs::write(&text_path, header).map_err(|err| io_err(&text_path, err))?;
        Ok(Ledger {
            text_path,
            json_path,
            rows: Vec::new(),
        })
    }

    fn has(&self, cell: usize, spec_hash: u64) -> bool {
        self.rows
            .iter()
            .any(|row| row.cell == cell && row.spec_hash == spec_hash)
    }

    /// Appends one row to the text ledger — append-only, fsynced, never
    /// rewriting earlier bytes.
    fn append(&mut self, row: LedgerRow) -> Result<(), SweepError> {
        let line = render_row(&row);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.text_path)
            .map_err(|err| io_err(&self.text_path, err))?;
        file.write_all(line.as_bytes())
            .and_then(|()| file.sync_all())
            .map_err(|err| io_err(&self.text_path, err))?;
        self.rows.push(row);
        Ok(())
    }

    /// Regenerates the JSON projection atomically (write-tmp-then-rename,
    /// like checkpoints).
    fn write_json(
        &self,
        sweep: &SweepSpec,
        cells: &[SweepCell],
        fronts_dir: &Path,
    ) -> Result<(), SweepError> {
        let document = bench_json(sweep, cells, &self.rows, fronts_dir);
        let tmp = self.json_path.with_extension("json.tmp");
        std::fs::write(&tmp, document.to_pretty()).map_err(|err| io_err(&tmp, err))?;
        std::fs::rename(&tmp, &self.json_path).map_err(|err| io_err(&self.json_path, err))?;
        Ok(())
    }
}

fn render_row(row: &LedgerRow) -> String {
    format!(
        "| {:04} | {:#018x} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
        row.cell,
        row.spec_hash,
        row.coordinates,
        row.problem,
        row.method,
        row.seed,
        row.generations,
        row.evaluations,
        row.front_size,
        row.hypervolume
            .map_or_else(|| "-".to_string(), |hv| format!("{hv:?}")),
        row.wall_ms,
        row.unix
    )
}

/// Parses a `ledger.md` back into its sweep hash and rows. Tolerates the
/// header block and the column/separator rows; anything shaped like a data
/// row must parse exactly.
fn parse_ledger(text: &str) -> Result<(u64, Vec<LedgerRow>), String> {
    let mut sweep_hash = None;
    let mut rows = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("- sweep-hash: ") {
            let digits = rest
                .trim()
                .strip_prefix("0x")
                .ok_or_else(|| format!("bad sweep-hash line '{line}'"))?;
            sweep_hash = Some(
                u64::from_str_radix(digits, 16)
                    .map_err(|_| format!("bad sweep-hash line '{line}'"))?,
            );
            continue;
        }
        if !line.starts_with('|') {
            continue;
        }
        let columns: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        // Data rows lead with a numeric cell index; the column-name and
        // separator rows do not.
        let Ok(cell) = columns[0].parse::<usize>() else {
            continue;
        };
        if columns.len() != 12 {
            return Err(format!(
                "row for cell {cell} has {} columns, expected 12",
                columns.len()
            ));
        }
        let hex = columns[1]
            .strip_prefix("0x")
            .ok_or_else(|| format!("row for cell {cell}: bad spec hash '{}'", columns[1]))?;
        let spec_hash = u64::from_str_radix(hex, 16)
            .map_err(|_| format!("row for cell {cell}: bad spec hash '{}'", columns[1]))?;
        let parse_u64 = |at: usize, what: &str| {
            columns[at]
                .parse::<u64>()
                .map_err(|_| format!("row for cell {cell}: bad {what} '{}'", columns[at]))
        };
        let parse_usize = |at: usize, what: &str| {
            columns[at]
                .parse::<usize>()
                .map_err(|_| format!("row for cell {cell}: bad {what} '{}'", columns[at]))
        };
        let hypervolume = match columns[9] {
            "-" => None,
            number => Some(
                number
                    .parse::<f64>()
                    .map_err(|_| format!("row for cell {cell}: bad hypervolume '{number}'"))?,
            ),
        };
        rows.push(LedgerRow {
            cell,
            spec_hash,
            coordinates: columns[2].to_string(),
            problem: columns[3].to_string(),
            method: columns[4].to_string(),
            seed: parse_u64(5, "seed")?,
            generations: parse_usize(6, "gens")?,
            evaluations: parse_usize(7, "evals")?,
            front_size: parse_usize(8, "front")?,
            hypervolume,
            wall_ms: parse_u64(10, "wall-ms")?,
            unix: parse_u64(11, "unix")?,
        });
    }
    let sweep_hash = sweep_hash.ok_or_else(|| "missing 'sweep-hash:' line".to_string())?;
    Ok((sweep_hash, rows))
}

/// Builds the `BENCH_sweep.json` document: header, every cell (completed
/// rows verbatim, `"never"` placeholders otherwise), and the per-scenario
/// merged-front summary.
fn bench_json(
    sweep: &SweepSpec,
    cells: &[SweepCell],
    rows: &[LedgerRow],
    fronts_dir: &Path,
) -> JsonValue {
    let hex = |hash: u64| JsonValue::String(format!("{hash:#018x}"));
    let axes = JsonValue::Array(
        sweep
            .axes
            .iter()
            .map(|axis| {
                JsonValue::Object(vec![
                    ("field".to_string(), JsonValue::String(axis.field.clone())),
                    (
                        "values".to_string(),
                        JsonValue::Array(
                            axis.values
                                .iter()
                                .map(|value| JsonValue::String(value.clone()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let row_of = |cell: &SweepCell| rows.iter().find(|row| row.cell == cell.index);
    let cell_entries = JsonValue::Array(
        cells
            .iter()
            .map(|cell| {
                let coordinates = JsonValue::Object(
                    cell.coordinates
                        .iter()
                        .map(|(field, value)| (field.clone(), JsonValue::String(value.clone())))
                        .collect(),
                );
                let mut fields = vec![
                    ("cell".to_string(), JsonValue::Int(cell.index as i64)),
                    ("spec_hash".to_string(), hex(cell.spec.content_hash())),
                    ("coordinates".to_string(), coordinates),
                    ("problem".to_string(), JsonValue::String(scenario_of(cell))),
                    ("method".to_string(), JsonValue::String(method_of(cell))),
                    ("seed".to_string(), JsonValue::Int(cell.spec.seed as i64)),
                ];
                match row_of(cell) {
                    Some(row) => {
                        fields.push((
                            "status".to_string(),
                            JsonValue::String("complete".to_string()),
                        ));
                        fields.push((
                            "generations".to_string(),
                            JsonValue::Int(row.generations as i64),
                        ));
                        fields.push((
                            "evaluations".to_string(),
                            JsonValue::Int(row.evaluations as i64),
                        ));
                        fields.push((
                            "front_size".to_string(),
                            JsonValue::Int(row.front_size as i64),
                        ));
                        fields.push((
                            "hypervolume".to_string(),
                            row.hypervolume.map_or(JsonValue::Null, JsonValue::Number),
                        ));
                        fields.push(("wall_ms".to_string(), JsonValue::Int(row.wall_ms as i64)));
                        fields.push(("unix".to_string(), JsonValue::Int(row.unix as i64)));
                    }
                    None => {
                        // The committed-table idiom: work not yet done is
                        // an explicit placeholder, not a missing row.
                        fields.push(("status".to_string(), JsonValue::String("never".to_string())));
                        for metric in ["generations", "evaluations", "front_size", "hypervolume"] {
                            fields.push((metric.to_string(), JsonValue::Null));
                        }
                    }
                }
                JsonValue::Object(fields)
            })
            .collect(),
    );
    JsonValue::Object(vec![
        (
            "format".to_string(),
            JsonValue::String(BENCH_FORMAT.to_string()),
        ),
        ("version".to_string(), JsonValue::Int(BENCH_VERSION)),
        ("sweep_hash".to_string(), hex(sweep.content_hash())),
        (
            "cells_total".to_string(),
            JsonValue::Int(cells.len() as i64),
        ),
        (
            "cells_complete".to_string(),
            JsonValue::Int(rows.len() as i64),
        ),
        ("axes".to_string(), axes),
        ("cells".to_string(), cell_entries),
        ("summary".to_string(), summary_json(cells, rows, fronts_dir)),
    ])
}

/// The method × scenario summary: per scenario, merge every completed
/// cell's persisted front into a global front, then score each method's
/// own merged front by hypervolume (against a reference derived from the
/// global front) and by the fraction of the global front it contributes
/// ([`global_coverage`]).
fn summary_json(cells: &[SweepCell], rows: &[LedgerRow], fronts_dir: &Path) -> JsonValue {
    use std::collections::BTreeMap;
    /// The objective vectors of one cell's persisted front.
    type Front = Vec<Vec<f64>>;
    // scenario -> method -> fronts of its completed cells.
    let mut scenarios: BTreeMap<String, BTreeMap<String, Vec<Front>>> = BTreeMap::new();
    for row in rows {
        let Some(cell) = cells.get(row.cell) else {
            continue;
        };
        let front_path = fronts_dir.join(format!("{}.front", cell.label()));
        let Ok(objectives) = read_front_objectives(&front_path) else {
            continue;
        };
        scenarios
            .entry(row.problem.clone())
            .or_default()
            .entry(row.method.clone())
            .or_default()
            .push(objectives);
    }
    JsonValue::Array(
        scenarios
            .into_iter()
            .map(|(scenario, methods)| {
                let all: Vec<Vec<Vec<f64>>> = methods.values().flatten().cloned().collect();
                let global = union_front(&all);
                let dim = global.first().map_or(0, Vec::len);
                let reference = if (2..=3).contains(&dim) {
                    Some(derived_reference(&global))
                } else {
                    None
                };
                let method_entries = JsonValue::Array(
                    methods
                        .into_iter()
                        .map(|(method, fronts)| {
                            let merged = union_front(&fronts);
                            let merged_hv = reference
                                .as_ref()
                                .map(|reference| hypervolume(&merged, reference));
                            JsonValue::Object(vec![
                                ("method".to_string(), JsonValue::String(method)),
                                ("cells".to_string(), JsonValue::Int(fronts.len() as i64)),
                                (
                                    "front_size".to_string(),
                                    JsonValue::Int(merged.len() as i64),
                                ),
                                (
                                    "hypervolume".to_string(),
                                    merged_hv.map_or(JsonValue::Null, JsonValue::Number),
                                ),
                                (
                                    "coverage".to_string(),
                                    JsonValue::Number(global_coverage(&merged, &global)),
                                ),
                            ])
                        })
                        .collect(),
                );
                JsonValue::Object(vec![
                    ("scenario".to_string(), JsonValue::String(scenario)),
                    (
                        "global_front_size".to_string(),
                        JsonValue::Int(global.len() as i64),
                    ),
                    (
                        "reference_point".to_string(),
                        reference.map_or(JsonValue::Null, |reference| {
                            JsonValue::Array(reference.into_iter().map(JsonValue::Number).collect())
                        }),
                    ),
                    ("methods".to_string(), method_entries),
                ])
            })
            .collect(),
    )
}

/// What [`validate_bench_json`] found in a healthy ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerCheck {
    /// The ledger's sweep hash, as printed.
    pub sweep_hash: String,
    /// Total cells in the grid.
    pub cells_total: usize,
    /// Cells with completed rows.
    pub cells_complete: usize,
}

/// Validates a `BENCH_sweep.json` document against the ledger schema: the
/// format/version tags, the hash shape, cell count vs. the axes' product,
/// per-cell field presence and ranges, and the summary's metric ranges.
/// This is what CI runs against both freshly emitted and committed ledgers
/// to catch format drift.
///
/// # Errors
///
/// Every problem found, as one human-readable string each.
pub fn validate_bench_json(text: &str) -> Result<LedgerCheck, Vec<String>> {
    let mut problems = Vec::new();
    let document = match JsonValue::parse(text) {
        Ok(document) => document,
        Err(err) => return Err(vec![format!("not valid JSON: {err}")]),
    };
    let is_hash = |value: Option<&JsonValue>| {
        value.and_then(JsonValue::as_str).is_some_and(|hash| {
            hash.len() == 18
                && hash.starts_with("0x")
                && hash[2..].chars().all(|c| c.is_ascii_hexdigit())
        })
    };
    if document.get("format").and_then(JsonValue::as_str) != Some(BENCH_FORMAT) {
        problems.push(format!("'format' must be \"{BENCH_FORMAT}\""));
    }
    if document.get("version").and_then(JsonValue::as_i64) != Some(BENCH_VERSION) {
        problems.push(format!("'version' must be {BENCH_VERSION}"));
    }
    if !is_hash(document.get("sweep_hash")) {
        problems.push("'sweep_hash' must be an 0x-prefixed 16-digit hex string".to_string());
    }
    let mut expected_cells = 1usize;
    let mut axis_fields = Vec::new();
    match document.get("axes").and_then(JsonValue::as_array) {
        Some(axes) if !axes.is_empty() => {
            for (at, axis) in axes.iter().enumerate() {
                match axis.get("field").and_then(JsonValue::as_str) {
                    Some(field) => axis_fields.push(field.to_string()),
                    None => problems.push(format!("axis {at} is missing 'field'")),
                }
                match axis.get("values").and_then(JsonValue::as_array) {
                    Some(values) if !values.is_empty() => {
                        expected_cells = expected_cells.saturating_mul(values.len());
                        if values.iter().any(|value| value.as_str().is_none()) {
                            problems.push(format!("axis {at} has a non-string value"));
                        }
                    }
                    _ => problems.push(format!("axis {at} needs a non-empty 'values' array")),
                }
            }
        }
        _ => problems.push("'axes' must be a non-empty array".to_string()),
    }
    let cells_total = document
        .get("cells_total")
        .and_then(JsonValue::as_i64)
        .unwrap_or(-1);
    let cells = document
        .get("cells")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    if cells_total != cells.len() as i64 {
        problems.push(format!(
            "'cells_total' is {cells_total} but 'cells' holds {} entries",
            cells.len()
        ));
    }
    if !axis_fields.is_empty() && cells.len() != expected_cells {
        problems.push(format!(
            "'cells' holds {} entries but the axes multiply to {expected_cells}",
            cells.len()
        ));
    }
    let mut complete = 0usize;
    for (at, cell) in cells.iter().enumerate() {
        if cell.get("cell").and_then(JsonValue::as_i64) != Some(at as i64) {
            problems.push(format!("cell {at}: 'cell' index out of order"));
        }
        if !is_hash(cell.get("spec_hash")) {
            problems.push(format!("cell {at}: bad 'spec_hash'"));
        }
        match cell.get("coordinates") {
            Some(JsonValue::Object(fields)) => {
                let names: Vec<&String> = fields.iter().map(|(name, _)| name).collect();
                if !axis_fields.is_empty() && names.len() != axis_fields.len() {
                    problems.push(format!(
                        "cell {at}: coordinates name {} fields, the sweep has {} axes",
                        names.len(),
                        axis_fields.len()
                    ));
                }
            }
            _ => problems.push(format!("cell {at}: 'coordinates' must be an object")),
        }
        let finite_or_null = |key: &str| match cell.get(key) {
            Some(JsonValue::Null) => true,
            Some(value) => value.as_f64().is_some_and(f64::is_finite),
            None => false,
        };
        match cell.get("status").and_then(JsonValue::as_str) {
            Some("complete") => {
                complete += 1;
                for key in [
                    "generations",
                    "evaluations",
                    "front_size",
                    "wall_ms",
                    "unix",
                ] {
                    if cell
                        .get(key)
                        .and_then(JsonValue::as_i64)
                        .is_none_or(|value| value < 0)
                    {
                        problems.push(format!(
                            "cell {at}: complete but '{key}' is not a non-negative integer"
                        ));
                    }
                }
                if !finite_or_null("hypervolume") {
                    problems.push(format!(
                        "cell {at}: 'hypervolume' must be a finite number or null"
                    ));
                }
            }
            Some("never") => {
                for key in ["generations", "evaluations", "front_size", "hypervolume"] {
                    if !cell.get(key).is_some_and(JsonValue::is_null) {
                        problems.push(format!("cell {at}: never ran but '{key}' is not null"));
                    }
                }
            }
            other => problems.push(format!(
                "cell {at}: 'status' must be \"complete\" or \"never\", got {other:?}"
            )),
        }
    }
    if document.get("cells_complete").and_then(JsonValue::as_i64) != Some(complete as i64) {
        problems.push(format!(
            "'cells_complete' disagrees with the {complete} complete cells"
        ));
    }
    match document.get("summary").and_then(JsonValue::as_array) {
        Some(summary) => {
            for scenario in summary {
                let name = scenario
                    .get("scenario")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                let methods = scenario
                    .get("methods")
                    .and_then(JsonValue::as_array)
                    .unwrap_or(&[]);
                if methods.is_empty() {
                    problems.push(format!("summary '{name}': no methods"));
                }
                for method in methods {
                    let coverage = method.get("coverage").and_then(JsonValue::as_f64);
                    if !coverage.is_some_and(|value| (0.0..=1.0).contains(&value)) {
                        problems.push(format!("summary '{name}': coverage must be within [0, 1]"));
                    }
                    match method.get("hypervolume") {
                        Some(JsonValue::Null) => {}
                        Some(value) if value.as_f64().is_some_and(f64::is_finite) => {}
                        _ => problems.push(format!(
                            "summary '{name}': hypervolume must be finite or null"
                        )),
                    }
                }
            }
        }
        None => problems.push("'summary' must be an array".to_string()),
    }
    if problems.is_empty() {
        Ok(LedgerCheck {
            sweep_hash: document
                .get("sweep_hash")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            cells_total: cells.len(),
            cells_complete: complete,
        })
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathway_moo::EvalBackend;

    const SWEEP: &str = "\
pathway-sweep v1

[sweep]
run.seed = 1 | 2

[problem]
name = schaffer

[optimizer]
kind = nsga2
population = 12

[run]
seed = 1
checkpoint_every = 2
reference_point = 25, 25

[stop]
max_generations = 4
";

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pathway-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn ledger_rows_round_trip_through_text() {
        let row = LedgerRow {
            cell: 7,
            spec_hash: 0x0123_4567_89ab_cdef,
            coordinates: "problem.name=zdt1 run.seed=2".to_string(),
            problem: "zdt1 variables=6".to_string(),
            method: "nsga2 population=50".to_string(),
            seed: 2,
            generations: 60,
            evaluations: 1440,
            front_size: 24,
            hypervolume: Some(0.1 + 0.2),
            wall_ms: 1234,
            unix: 1_754_600_000,
        };
        let text = format!(
            "- sweep-hash: 0xdeadbeefdeadbeef\n{LEDGER_COLUMNS}\n|---|\n{}{}",
            render_row(&row),
            render_row(&LedgerRow {
                hypervolume: None,
                cell: 8,
                ..row.clone()
            })
        );
        let (hash, rows) = parse_ledger(&text).unwrap();
        assert_eq!(hash, 0xdead_beef_dead_beef);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], row);
        assert_eq!(rows[1].hypervolume, None);
    }

    #[test]
    fn sweep_runs_skips_and_validates() {
        let dir = temp_dir("runner");
        let sweep = SweepSpec::from_text(SWEEP).unwrap();
        let executor = Executor::shared(EvalBackend::Serial);
        let mut events = Vec::new();
        let report = run_sweep(&sweep, &dir, executor.clone(), None, &mut |event| {
            events.push(format!("{event:?}"));
        })
        .unwrap();
        assert_eq!(report.cells, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.interrupted, None);

        // Every artifact is on disk.
        let json_text = std::fs::read_to_string(dir.join("BENCH_sweep.json")).unwrap();
        let check = validate_bench_json(&json_text).unwrap();
        assert_eq!(check.cells_total, 2);
        assert_eq!(check.cells_complete, 2);
        for cell in 0..2 {
            assert!(dir.join(format!("fronts/cell-000{cell}.front")).exists());
        }
        let fronts = read_front_objectives(&dir.join("fronts/cell-0000.front")).unwrap();
        assert!(!fronts.is_empty());
        assert_eq!(fronts[0].len(), 2);

        // A second invocation re-runs nothing and leaves the text ledger
        // byte-identical.
        let before = std::fs::read(dir.join("ledger.md")).unwrap();
        let report = run_sweep(&sweep, &dir, executor, None, &mut |_| {}).unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.skipped, 2);
        let after = std::fs::read(dir.join("ledger.md")).unwrap();
        assert_eq!(before, after);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_leaves_the_ledger_bit_identical_and_records_phases() {
        let plain_dir = temp_dir("plain");
        let metered_dir = temp_dir("metered");
        let sweep = SweepSpec::from_text(SWEEP).unwrap();
        let executor = Executor::shared(EvalBackend::Serial);
        run_sweep(&sweep, &plain_dir, executor.clone(), None, &mut |_| {}).unwrap();
        let registry = MetricsRegistry::new();
        run_sweep_with_metrics(
            &sweep,
            &metered_dir,
            executor,
            None,
            Some(&registry),
            &mut |_| {},
        )
        .unwrap();
        // Fronts are bit-exact files; telemetry must not perturb them.
        for cell in 0..2 {
            let name = format!("fronts/cell-000{cell}.front");
            assert_eq!(
                std::fs::read(plain_dir.join(&name)).unwrap(),
                std::fs::read(metered_dir.join(&name)).unwrap(),
                "{name} diverged under telemetry"
            );
        }
        let snapshot = registry.snapshot();
        // 2 cells × 4 generations each.
        assert_eq!(snapshot.counter("phase.generation.calls"), Some(8));
        assert!(
            snapshot
                .counter("phase.checkpoint_write.calls")
                .unwrap_or(0)
                >= 2
        );
        assert!(snapshot.counter("exec.candidates").unwrap_or(0) > 0);
        std::fs::remove_dir_all(&plain_dir).ok();
        std::fs::remove_dir_all(&metered_dir).ok();
    }

    #[test]
    fn a_foreign_ledger_is_refused() {
        let dir = temp_dir("foreign");
        let sweep = SweepSpec::from_text(SWEEP).unwrap();
        let other = SweepSpec::from_text(&SWEEP.replace("1 | 2", "3 | 4")).unwrap();
        let executor = Executor::shared(EvalBackend::Serial);
        run_sweep(&sweep, &dir, executor.clone(), Some(0), &mut |_| {}).unwrap();
        let err = run_sweep(&other, &dir, executor, None, &mut |_| {}).unwrap_err();
        assert!(
            err.to_string().contains("different sweep"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_flags_drifted_ledgers() {
        let dir = temp_dir("validate");
        let sweep = SweepSpec::from_text(SWEEP).unwrap();
        let executor = Executor::shared(EvalBackend::Serial);
        run_sweep(&sweep, &dir, executor, None, &mut |_| {}).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_sweep.json")).unwrap();

        let broken = text.replace("\"pathway-bench-sweep\"", "\"something-else\"");
        assert!(validate_bench_json(&broken).is_err());
        let broken = text.replace("\"status\": \"complete\"", "\"status\": \"done\"");
        assert!(validate_bench_json(&broken).is_err());
        assert!(validate_bench_json("{not json").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn derived_references_sit_beyond_the_front() {
        let points = vec![vec![0.0, 4.0], vec![4.0, 0.0], vec![1.0, 1.0]];
        let reference = derived_reference(&points);
        assert_eq!(reference.len(), 2);
        assert!(reference.iter().all(|&r| r > 4.0));
        // Degenerate span still yields a strictly dominating reference.
        let flat = vec![vec![2.0, 2.0]];
        assert_eq!(derived_reference(&flat), vec![3.0, 3.0]);
    }
}
