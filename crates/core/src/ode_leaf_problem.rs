//! The dynamic (ODE-backed) leaf-redesign problem with warm-started
//! steady-state evaluation.
//!
//! [`crate::LeafRedesignProblem`] scores a design with the *analytic*
//! uptake model; this module scores it with the full
//! [`pathway_photosynthesis::CalvinCycleOde`] driven to steady state — the
//! oracle the paper actually describes, and orders of magnitude more
//! expensive. The batch-level amortization that makes it affordable inside
//! an optimization loop: each candidate's integration is **warm-started**
//! from the steady state of the nearest already-evaluated parent design, so
//! consecutive generations (whose offspring cluster around their parents)
//! pay for tracking the difference between designs instead of re-spooling
//! the whole autocatalytic transient from the cold-start state every time.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::RwLock;

use pathway_linalg::Vector;
use pathway_moo::engine::MetricsRegistry;
use pathway_moo::MultiObjectiveProblem;
use pathway_photosynthesis::{EnzymePartition, OdeUptakeEvaluator, Scenario};

/// The pool of parent steady states candidate evaluations warm-start from.
///
/// `committed` is the frozen pool every evaluation reads; `pending` collects
/// the steady states of the batch currently being evaluated. The hand-over
/// happens in [`MultiObjectiveProblem::prepare_batch`] — once per *whole*
/// batch, before any chunk is evaluated — which is the linchpin of the
/// determinism story (see the type-level docs below).
#[derive(Debug, Default)]
struct WarmStartPool {
    committed: Vec<(Vec<f64>, Vector)>,
    pending: Vec<(Vec<f64>, Vector)>,
    /// Bumped by every commit. `evaluate_batch` snapshots it when a chunk
    /// starts and re-checks it before recording results: a mismatch means a
    /// *concurrent* `prepare_batch` (another optimizer sharing this
    /// instance, e.g. a multi-island archipelago) swapped the pool
    /// mid-batch — the batch's warm starts were scheduling-dependent, so
    /// the run's determinism contract is already broken and we fail loudly
    /// instead of silently diverging.
    epoch: u64,
}

/// The leaf-redesign problem evaluated through the dynamic ODE model, with
/// nearest-parent warm starts.
///
/// Objectives (both minimized): `-uptake` (net CO₂ uptake of the ODE steady
/// state, µmol m⁻² s⁻¹) and `nitrogen` (total protein nitrogen, mg/l) — the
/// same trade-off as [`crate::LeafRedesignProblem`], with the analytic
/// steady state replaced by an integrated one.
///
/// # Warm starts and determinism
///
/// The warm-start pool holds the steady states of the **previous**
/// generation's batch, committed in
/// [`MultiObjectiveProblem::prepare_batch`] and frozen while the current
/// batch is evaluated. Every candidate then picks its start state as a pure
/// function of `(candidate, frozen pool)` — nearest parent by Euclidean
/// distance in capacity space, ties broken by lexicographic comparison of
/// the parent's capacities — so chunked, pooled evaluation is bit-identical
/// to serial evaluation of the same batch, and the commit itself sorts the
/// collected states by content, which makes the pool independent of the
/// order worker threads finished in. `tests/determinism.rs` enforces both.
///
/// What the warm start is **not**: a pure function of the candidate alone.
/// Results depend on the evaluation history of this problem *instance*, so
/// two optimizers must share one instance (or both start fresh) to agree
/// bit-for-bit, and a checkpoint resumed in a fresh process re-converges
/// from a cold pool rather than reproducing the original trajectory
/// bit-identically. That is why this problem is deliberately **not** in the
/// spec registry of [`crate::PROBLEM_CATALOG`] — the `pathway` CLI promises
/// bit-identical cross-process resume, which a process-local cache cannot
/// honor. For the same reason, drive this problem with **NSGA-II**, whose
/// whole offspring generation flows through one
/// [`MultiObjectiveProblem::evaluate_batch`] call: a multi-island
/// archipelago steps its islands on concurrent threads, whose interleaved
/// `prepare_batch` commits against one shared pool would be
/// scheduling-dependent — the problem detects a commit landing mid-batch
/// and **panics** with a diagnostic rather than letting the run silently
/// diverge. MOEA/D is *correct* but gains nothing: it evaluates its
/// children one at a time through [`MultiObjectiveProblem::evaluate`],
/// which reads the committed pool without ever refreshing it, so after the
/// initial batch every candidate cold-starts.
///
/// # Example
///
/// ```no_run
/// use pathway_core::OdeLeafRedesignProblem;
/// use pathway_moo::{problems, MultiObjectiveProblem};
/// use pathway_photosynthesis::Scenario;
///
/// let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
/// let natural = pathway_photosynthesis::EnzymePartition::natural();
/// let objectives = problem.evaluate(natural.capacities());
/// assert!(objectives[0] < 0.0); // positive uptake
/// ```
#[derive(Debug)]
pub struct OdeLeafRedesignProblem {
    scenario: Scenario,
    evaluator: OdeUptakeEvaluator,
    bounds: Vec<(f64, f64)>,
    pool: RwLock<WarmStartPool>,
    /// Integrations that started from a parent steady state.
    warm_starts: AtomicU64,
    /// Integrations that spooled up from the cold-start state.
    cold_starts: AtomicU64,
}

impl OdeLeafRedesignProblem {
    /// Creates the problem for a scenario with the default search box
    /// (0.02×–4× the natural capacities, matching
    /// [`crate::LeafRedesignProblem`]) and the coarse
    /// [`OdeUptakeEvaluator::fast`] integrator — the right trade-off inside
    /// an optimization loop; use
    /// [`OdeLeafRedesignProblem::with_evaluator`] for publication-grade
    /// tolerances.
    pub fn new(scenario: Scenario) -> Self {
        OdeLeafRedesignProblem {
            scenario,
            evaluator: OdeUptakeEvaluator::fast(),
            bounds: EnzymePartition::bounds(0.02, 4.0),
            pool: RwLock::new(WarmStartPool::default()),
            warm_starts: AtomicU64::new(0),
            cold_starts: AtomicU64::new(0),
        }
    }

    /// Dumps the cumulative warm-start counters into `registry` as
    /// `oracle.ode.warm_starts` and `oracle.ode.cold_starts`. Call once
    /// when an invocation finishes; the hit rate (`warm / (warm + cold)`)
    /// is the amortization the module docs describe.
    pub fn record_oracle_metrics(&self, registry: &MetricsRegistry) {
        registry.add(
            "oracle.ode.warm_starts",
            self.warm_starts.load(AtomicOrdering::Relaxed),
        );
        registry.add(
            "oracle.ode.cold_starts",
            self.cold_starts.load(AtomicOrdering::Relaxed),
        );
    }

    /// Overrides the steady-state evaluator (tolerances, horizon, step).
    #[must_use]
    pub fn with_evaluator(mut self, evaluator: OdeUptakeEvaluator) -> Self {
        self.evaluator = evaluator;
        self
    }

    /// Overrides the search box as multiples of the natural capacities.
    #[must_use]
    pub fn with_bounds(mut self, lower_factor: f64, upper_factor: f64) -> Self {
        self.bounds = EnzymePartition::bounds(lower_factor, upper_factor);
        self
    }

    /// The scenario being optimized.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Number of parent steady states currently committed for warm starts.
    pub fn warm_start_pool_size(&self) -> usize {
        self.pool
            .read()
            .expect("warm-start pool lock poisoned")
            .committed
            .len()
    }

    /// The nearest committed parent's steady state, or `None` for a cold
    /// pool. Deterministic for a given pool *set*: squared Euclidean
    /// distance in capacity space, ties broken towards the lexicographically
    /// smallest parent capacities.
    fn warm_start(&self, x: &[f64]) -> Option<Vector> {
        let pool = self.pool.read().expect("warm-start pool lock poisoned");
        let mut best: Option<(&Vec<f64>, &Vector, f64)> = None;
        for (capacities, state) in &pool.committed {
            let distance: f64 = capacities
                .iter()
                .zip(x)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let better = match &best {
                None => true,
                Some((incumbent, _, incumbent_distance)) => {
                    match distance.total_cmp(incumbent_distance) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => lex_cmp(capacities, incumbent) == Ordering::Less,
                    }
                }
            };
            if better {
                best = Some((capacities, state, distance));
            }
        }
        best.map(|(_, state, _)| state.clone())
    }

    /// Evaluates one candidate against the frozen pool: objectives plus the
    /// settled steady state (`None` when the integration failed to settle —
    /// such candidates score zero uptake and never enter the pool).
    fn evaluate_one(&self, x: &[f64]) -> (Vec<f64>, Option<Vector>) {
        let partition = EnzymePartition::new(x.to_vec());
        let nitrogen = partition.total_nitrogen();
        let solved = match self.warm_start(x) {
            Some(y0) => {
                self.warm_starts.fetch_add(1, AtomicOrdering::Relaxed);
                self.evaluator
                    .steady_state_from(&partition, &self.scenario, y0)
            }
            None => {
                self.cold_starts.fetch_add(1, AtomicOrdering::Relaxed);
                self.evaluator.steady_state(&partition, &self.scenario)
            }
        };
        match solved {
            Ok((steady, uptake)) => (vec![-uptake, nitrogen], Some(steady.state)),
            // A pathway that never settles fixes no carbon worth reporting;
            // score it as zero uptake instead of poisoning the front with
            // non-finite objectives.
            Err(_) => (vec![0.0, nitrogen], None),
        }
    }
}

/// Lexicographic total order on capacity vectors (shorter is smaller on a
/// shared prefix). Used only for deterministic tie-breaks and pool sorting.
fn lex_cmp(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

impl MultiObjectiveProblem for OdeLeafRedesignProblem {
    fn num_variables(&self) -> usize {
        pathway_photosynthesis::ENZYME_COUNT
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.bounds.clone()
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.evaluate_one(x).0
    }

    /// Evaluates the batch against the frozen parent pool and collects the
    /// settled steady states as `pending` parents for the *next* batch.
    /// Chunk-safe: reads only frozen state, and the unordered `pending`
    /// appends are normalized (sorted by content) at the next
    /// [`MultiObjectiveProblem::prepare_batch`].
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<(Vec<f64>, f64)> {
        let epoch = self
            .pool
            .read()
            .expect("warm-start pool lock poisoned")
            .epoch;
        let mut results = Vec::with_capacity(xs.len());
        let mut settled: Vec<(Vec<f64>, Vector)> = Vec::with_capacity(xs.len());
        for x in xs {
            let (objectives, steady) = self.evaluate_one(x);
            if let Some(state) = steady {
                settled.push((x.clone(), state));
            }
            results.push((objectives, 0.0));
        }
        let mut pool = self.pool.write().expect("warm-start pool lock poisoned");
        assert_eq!(
            pool.epoch, epoch,
            "OdeLeafRedesignProblem: prepare_batch committed while a batch was still \
             evaluating — this problem instance is being driven by concurrent optimizers \
             (e.g. a multi-island archipelago), which makes warm starts scheduling-dependent; \
             drive it with a single-population optimizer or give each optimizer its own instance"
        );
        pool.pending.extend(settled);
        results
    }

    /// Commits the previous batch's steady states as the new parent pool.
    /// Runs once per whole batch (before any chunk), so every chunk of the
    /// incoming batch sees the same frozen pool; the sort makes the pool a
    /// pure function of the *set* of settled parents, independent of worker
    /// scheduling.
    fn prepare_batch(&self, _xs: &[Vec<f64>]) {
        let mut pool = self.pool.write().expect("warm-start pool lock poisoned");
        // Every prepare bumps the epoch — even a no-op commit — so that a
        // *second* driver's prepare interleaving with a batch in flight
        // trips the guard in `evaluate_batch` from the very first
        // generation, not only once the pool is non-empty.
        pool.epoch += 1;
        if pool.pending.is_empty() {
            return;
        }
        let mut parents = std::mem::take(&mut pool.pending);
        parents.sort_by(|a, b| lex_cmp(&a.0, &b.0));
        parents.dedup_by(|a, b| a.0 == b.0);
        pool.committed = parents;
    }

    fn name(&self) -> &str {
        "leaf-design-ode"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathway_moo::exec::Executor;
    use pathway_moo::EvalBackend;

    fn small_batch() -> Vec<Vec<f64>> {
        // All three designs settle under the fast integrator (down-scaled
        // partitions relax too slowly for its 800 s horizon).
        let natural = EnzymePartition::natural();
        vec![
            natural.capacities().to_vec(),
            natural.scaled(1.1).capacities().to_vec(),
            natural.scaled(1.3).capacities().to_vec(),
        ]
    }

    #[test]
    fn batched_evaluation_matches_the_per_candidate_path_bit_for_bit() {
        let batched = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let itemwise = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let xs = small_batch();
        let batch = batched.evaluate_batch(&xs);
        for (x, (objectives, violation)) in xs.iter().zip(&batch) {
            assert_eq!(objectives, &itemwise.evaluate(x));
            assert_eq!(*violation, 0.0);
        }
    }

    #[test]
    fn prepare_commits_parents_and_freezes_them_for_the_next_batch() {
        let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let xs = small_batch();
        assert_eq!(problem.warm_start_pool_size(), 0);
        problem.prepare_batch(&xs);
        let first = problem.evaluate_batch(&xs);
        assert_eq!(
            problem.warm_start_pool_size(),
            0,
            "pending is not committed yet"
        );
        problem.prepare_batch(&xs);
        assert_eq!(problem.warm_start_pool_size(), xs.len());
        // Identical designs warm-started from their own steady states still
        // produce finite, sensible objectives.
        let second = problem.evaluate_batch(&xs);
        for ((first_obj, _), (second_obj, _)) in first.iter().zip(&second) {
            assert!(first_obj[0] < 0.0 && second_obj[0] < 0.0, "positive uptake");
            assert_eq!(first_obj[1], second_obj[1], "nitrogen is exact");
        }
    }

    #[test]
    fn warm_started_generations_are_identical_under_serial_and_pooled_executors() {
        let serial_problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let pooled_problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let serial = Executor::serial();
        let pooled = Executor::new(EvalBackend::Threads(2));
        let xs = small_batch();
        for generation in 0..3 {
            let a = serial.evaluate_batch(&serial_problem, &xs);
            let b = pooled.evaluate_batch(&pooled_problem, &xs);
            assert_eq!(a, b, "generation {generation} diverged");
        }
        assert_eq!(
            serial_problem.warm_start_pool_size(),
            pooled_problem.warm_start_pool_size()
        );
    }

    #[test]
    fn oracle_counters_split_cold_and_warm_starts() {
        let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let xs = small_batch();
        problem.prepare_batch(&xs);
        problem.evaluate_batch(&xs); // cold pool: every start is cold
        problem.prepare_batch(&xs);
        problem.evaluate_batch(&xs); // committed parents: every start is warm
        let registry = MetricsRegistry::new();
        problem.record_oracle_metrics(&registry);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter("oracle.ode.cold_starts"),
            Some(xs.len() as u64)
        );
        assert_eq!(
            snapshot.counter("oracle.ode.warm_starts"),
            Some(xs.len() as u64)
        );
    }

    #[test]
    fn dimensions_and_name() {
        let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        assert_eq!(problem.num_variables(), 23);
        assert_eq!(problem.num_objectives(), 2);
        assert_eq!(problem.bounds().len(), 23);
        assert_eq!(problem.name(), "leaf-design-ode");
    }

    #[test]
    fn lex_cmp_is_a_total_order_with_length_tiebreak() {
        assert_eq!(lex_cmp(&[1.0, 2.0], &[1.0, 3.0]), Ordering::Less);
        assert_eq!(lex_cmp(&[2.0], &[1.0, 9.0]), Ordering::Greater);
        assert_eq!(lex_cmp(&[1.0], &[1.0, 0.0]), Ordering::Less);
        assert_eq!(lex_cmp(&[1.0, 2.0], &[1.0, 2.0]), Ordering::Equal);
    }
}
