//! The dynamic (ODE-backed) leaf-redesign problem with warm-started
//! steady-state evaluation.
//!
//! [`crate::LeafRedesignProblem`] scores a design with the *analytic*
//! uptake model; this module scores it with the full
//! [`pathway_photosynthesis::CalvinCycleOde`] driven to steady state — the
//! oracle the paper actually describes, and orders of magnitude more
//! expensive. The batch-level amortization that makes it affordable inside
//! an optimization loop: each candidate's integration is **warm-started**
//! from the steady state of the nearest already-evaluated design in a
//! bounded library spanning *all* previous generations, so consecutive
//! generations (whose offspring cluster around their parents) pay for
//! tracking the difference between designs instead of re-spooling the whole
//! autocatalytic transient from the cold-start state every time. The
//! library is indexed by a static k-d tree over capacity space, rebuilt
//! once per commit, so each lookup costs `O(log n)` expected instead of a
//! linear scan over every design ever settled.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::RwLock;

use pathway_linalg::Vector;
use pathway_moo::engine::MetricsRegistry;
use pathway_moo::MultiObjectiveProblem;
use pathway_photosynthesis::{EnzymePartition, OdeUptakeEvaluator, Scenario};

/// Upper bound on the warm-start library. Generous enough to hold several
/// generations of a typical population (60–200 designs) while keeping the
/// worst-case rebuild and memory footprint fixed.
const MAX_WARM_START_POOL: usize = 512;

/// One settled design in the warm-start library.
#[derive(Debug, Clone)]
struct WarmEntry {
    capacities: Vec<f64>,
    state: Vector,
    /// The commit epoch that produced this steady state; newer stamps win
    /// deduplication and survive eviction longer.
    stamp: u64,
}

/// A node of the static k-d tree over the committed entries. Children are
/// indices into [`WarmStartPool::nodes`].
#[derive(Debug, Clone, Copy)]
struct KdNode {
    entry: usize,
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// The library of parent steady states candidate evaluations warm-start
/// from.
///
/// `committed` is the frozen library every evaluation reads — a bounded,
/// deduplicated union of every previously committed generation, indexed by
/// the k-d tree in `nodes`; `pending` collects the steady states of the
/// batch currently being evaluated. The hand-over happens in
/// [`MultiObjectiveProblem::prepare_batch`] — once per *whole* batch,
/// before any chunk is evaluated — which is the linchpin of the determinism
/// story (see the type-level docs below).
#[derive(Debug, Default)]
struct WarmStartPool {
    committed: Vec<WarmEntry>,
    /// Static k-d tree over `committed`, rebuilt by every non-empty commit.
    nodes: Vec<KdNode>,
    root: Option<usize>,
    pending: Vec<(Vec<f64>, Vector)>,
    /// Bumped by every commit. `evaluate_batch` snapshots it when a chunk
    /// starts and re-checks it before recording results: a mismatch means a
    /// *concurrent* `prepare_batch` (another optimizer sharing this
    /// instance, e.g. a multi-island archipelago) swapped the pool
    /// mid-batch — the batch's warm starts were scheduling-dependent, so
    /// the run's determinism contract is already broken and we fail loudly
    /// instead of silently diverging.
    epoch: u64,
    /// When set, commits discard `pending` instead of merging it: the
    /// library is pinned to its current contents. See
    /// [`OdeLeafRedesignProblem::freeze_warm_start_pool`].
    frozen: bool,
}

impl WarmStartPool {
    /// Folds `pending` into the bounded committed library and rebuilds the
    /// k-d index. The result is a pure function of the *multiset* of
    /// commits so far — entries are stamped with the commit epoch, merged
    /// in a canonical (capacities, newest-first) order, deduplicated
    /// keeping the freshest steady state per design, and evicted
    /// oldest-generation-first (lexicographic capacities breaking ties
    /// within a generation) once the library exceeds
    /// [`MAX_WARM_START_POOL`]. Worker scheduling never shows: the sort
    /// erases `pending`'s arrival order.
    fn commit(&mut self) {
        self.epoch += 1;
        if self.frozen {
            self.pending.clear();
            return;
        }
        if self.pending.is_empty() {
            return;
        }
        let stamp = self.epoch;
        let mut entries = std::mem::take(&mut self.committed);
        entries.extend(self.pending.drain(..).map(|(capacities, state)| WarmEntry {
            capacities,
            state,
            stamp,
        }));
        // Newest stamp first within equal capacities, so the dedup keeps
        // the freshest steady state for a re-evaluated design.
        entries.sort_by(|a, b| {
            lex_cmp(&a.capacities, &b.capacities).then_with(|| b.stamp.cmp(&a.stamp))
        });
        entries.dedup_by(|a, b| lex_cmp(&a.capacities, &b.capacities) == Ordering::Equal);
        if entries.len() > MAX_WARM_START_POOL {
            entries.sort_by(|a, b| {
                b.stamp
                    .cmp(&a.stamp)
                    .then_with(|| lex_cmp(&a.capacities, &b.capacities))
            });
            entries.truncate(MAX_WARM_START_POOL);
            entries.sort_by(|a, b| lex_cmp(&a.capacities, &b.capacities));
        }
        self.committed = entries;
        self.rebuild_tree();
    }

    fn rebuild_tree(&mut self) {
        self.nodes.clear();
        self.nodes.reserve(self.committed.len());
        let mut indices: Vec<usize> = (0..self.committed.len()).collect();
        self.root = build_subtree(&self.committed, &mut indices, 0, &mut self.nodes);
    }

    /// The committed entry nearest to `x`: minimal squared Euclidean
    /// distance in capacity space, ties broken towards the
    /// lexicographically smallest capacities. That minimum is unique under
    /// the `(distance, lex)` total order (committed capacities are
    /// distinct), so the answer depends only on the library *set*, never on
    /// the tree layout or traversal order.
    fn nearest(&self, x: &[f64]) -> Option<&WarmEntry> {
        let root = self.root?;
        let mut best: Option<(usize, f64)> = None;
        self.nearest_in(root, x, &mut best);
        best.map(|(entry, _)| &self.committed[entry])
    }

    fn nearest_in(&self, node: usize, x: &[f64], best: &mut Option<(usize, f64)>) {
        let KdNode {
            entry,
            axis,
            left,
            right,
        } = self.nodes[node];
        let capacities = &self.committed[entry].capacities;
        let distance = squared_distance(capacities, x);
        let better = match best {
            None => true,
            Some((incumbent, incumbent_distance)) => match distance.total_cmp(incumbent_distance) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => {
                    lex_cmp(capacities, &self.committed[*incumbent].capacities) == Ordering::Less
                }
            },
        };
        if better {
            *best = Some((entry, distance));
        }
        let gap = x[axis] - capacities[axis];
        let (near, far) = if gap < 0.0 {
            (left, right)
        } else {
            (right, left)
        };
        if let Some(child) = near {
            self.nearest_in(child, x, best);
        }
        if let Some(child) = far {
            let best_distance = best.expect("best was set at this node").1;
            // Visit the far side on plane-distance *ties* (`<=`): an
            // equal-distance entry there must still compete, or the
            // lexicographic tie-break would depend on the tree layout
            // instead of the library set.
            if gap * gap <= best_distance {
                self.nearest_in(child, x, best);
            }
        }
    }
}

/// Builds a balanced k-d subtree over `indices` (indices into `entries`),
/// appending nodes to `nodes` and returning the subtree root. The split
/// axis cycles with depth; the median is chosen under the total order
/// (axis coordinate, then full lexicographic capacities), so the layout is
/// a pure function of the entry set.
fn build_subtree(
    entries: &[WarmEntry],
    indices: &mut [usize],
    depth: usize,
    nodes: &mut Vec<KdNode>,
) -> Option<usize> {
    let (&first, _) = indices.split_first()?;
    let axis = depth % entries[first].capacities.len();
    indices.sort_by(|&a, &b| {
        entries[a].capacities[axis]
            .total_cmp(&entries[b].capacities[axis])
            .then_with(|| lex_cmp(&entries[a].capacities, &entries[b].capacities))
    });
    let median = indices.len() / 2;
    let entry = indices[median];
    let (left_half, rest) = indices.split_at_mut(median);
    let right_half = &mut rest[1..];
    let left = build_subtree(entries, left_half, depth + 1, nodes);
    let right = build_subtree(entries, right_half, depth + 1, nodes);
    nodes.push(KdNode {
        entry,
        axis,
        left,
        right,
    });
    Some(nodes.len() - 1)
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// The leaf-redesign problem evaluated through the dynamic ODE model, with
/// nearest-parent warm starts.
///
/// Objectives (both minimized): `-uptake` (net CO₂ uptake of the ODE steady
/// state, µmol m⁻² s⁻¹) and `nitrogen` (total protein nitrogen, mg/l) — the
/// same trade-off as [`crate::LeafRedesignProblem`], with the analytic
/// steady state replaced by an integrated one.
///
/// # Warm starts and determinism
///
/// The warm-start library holds the steady states of **every** previous
/// generation (bounded, deduplicated, newest-first eviction), committed in
/// [`MultiObjectiveProblem::prepare_batch`] and frozen while the current
/// batch is evaluated. Every candidate then picks its start state as a pure
/// function of `(candidate, frozen library)` — nearest settled design by
/// Euclidean distance in capacity space via a static k-d tree, ties broken
/// by lexicographic comparison of the design's capacities — so chunked,
/// pooled evaluation is bit-identical to serial evaluation of the same
/// batch, and the commit itself sorts the collected states by content,
/// which makes the library independent of the order worker threads
/// finished in. `tests/determinism.rs` enforces both.
///
/// What the warm start is **not**: a pure function of the candidate alone.
/// Results depend on the evaluation history of this problem *instance*, so
/// two optimizers must share one instance (or both start fresh) to agree
/// bit-for-bit, and a checkpoint resumed in a fresh process re-converges
/// from a cold pool rather than reproducing the original trajectory
/// bit-identically. That is why this problem is deliberately **not** in the
/// spec registry of [`crate::PROBLEM_CATALOG`] — the `pathway` CLI promises
/// bit-identical cross-process resume, which a process-local cache cannot
/// honor. For the same reason, drive this problem with **NSGA-II**, whose
/// whole offspring generation flows through one
/// [`MultiObjectiveProblem::evaluate_batch`] call: a multi-island
/// archipelago steps its islands on concurrent threads, whose interleaved
/// `prepare_batch` commits against one shared pool would be
/// scheduling-dependent — the problem detects a commit landing mid-batch
/// and **panics** with a diagnostic rather than letting the run silently
/// diverge. MOEA/D is *correct* but gains nothing: it evaluates its
/// children one at a time through [`MultiObjectiveProblem::evaluate`],
/// which reads the committed pool without ever refreshing it, so after the
/// initial batch every candidate cold-starts.
///
/// # Example
///
/// ```no_run
/// use pathway_core::OdeLeafRedesignProblem;
/// use pathway_moo::{problems, MultiObjectiveProblem};
/// use pathway_photosynthesis::Scenario;
///
/// let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
/// let natural = pathway_photosynthesis::EnzymePartition::natural();
/// let objectives = problem.evaluate(natural.capacities());
/// assert!(objectives[0] < 0.0); // positive uptake
/// ```
#[derive(Debug)]
pub struct OdeLeafRedesignProblem {
    scenario: Scenario,
    evaluator: OdeUptakeEvaluator,
    bounds: Vec<(f64, f64)>,
    pool: RwLock<WarmStartPool>,
    /// Integrations that started from a parent steady state.
    warm_starts: AtomicU64,
    /// Integrations that spooled up from the cold-start state.
    cold_starts: AtomicU64,
}

impl OdeLeafRedesignProblem {
    /// Creates the problem for a scenario with the default search box
    /// (0.02×–4× the natural capacities, matching
    /// [`crate::LeafRedesignProblem`]) and the coarse
    /// [`OdeUptakeEvaluator::fast`] integrator — the right trade-off inside
    /// an optimization loop; use
    /// [`OdeLeafRedesignProblem::with_evaluator`] for publication-grade
    /// tolerances.
    pub fn new(scenario: Scenario) -> Self {
        OdeLeafRedesignProblem {
            scenario,
            evaluator: OdeUptakeEvaluator::fast(),
            bounds: EnzymePartition::bounds(0.02, 4.0),
            pool: RwLock::new(WarmStartPool::default()),
            warm_starts: AtomicU64::new(0),
            cold_starts: AtomicU64::new(0),
        }
    }

    /// Dumps the cumulative warm-start counters into `registry` as
    /// `oracle.ode.warm_starts` and `oracle.ode.cold_starts`. Call once
    /// when an invocation finishes; the hit rate (`warm / (warm + cold)`)
    /// is the amortization the module docs describe.
    pub fn record_oracle_metrics(&self, registry: &MetricsRegistry) {
        registry.add(
            "oracle.ode.warm_starts",
            self.warm_starts.load(AtomicOrdering::Relaxed),
        );
        registry.add(
            "oracle.ode.cold_starts",
            self.cold_starts.load(AtomicOrdering::Relaxed),
        );
    }

    /// Overrides the steady-state evaluator (tolerances, horizon, step).
    #[must_use]
    pub fn with_evaluator(mut self, evaluator: OdeUptakeEvaluator) -> Self {
        self.evaluator = evaluator;
        self
    }

    /// Overrides the search box as multiples of the natural capacities.
    #[must_use]
    pub fn with_bounds(mut self, lower_factor: f64, upper_factor: f64) -> Self {
        self.bounds = EnzymePartition::bounds(lower_factor, upper_factor);
        self
    }

    /// The scenario being optimized.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Pins the warm-start library to its current committed contents:
    /// every later [`MultiObjectiveProblem::prepare_batch`] still bumps the
    /// epoch (so the concurrent-driver guard keeps working) but discards
    /// the batch's settled states instead of merging them. Use this to
    /// re-score designs against a *fixed* parent library — replaying a
    /// front, or benchmarking the evaluator on a reproducible warm/cold
    /// cost profile that does not drift as the library absorbs new parents.
    pub fn freeze_warm_start_pool(&self) {
        self.pool
            .write()
            .expect("warm-start pool lock poisoned")
            .frozen = true;
    }

    /// Number of parent steady states currently committed for warm starts.
    pub fn warm_start_pool_size(&self) -> usize {
        self.pool
            .read()
            .expect("warm-start pool lock poisoned")
            .committed
            .len()
    }

    /// The nearest committed design's steady state, or `None` for a cold
    /// library. Deterministic for a given library *set*: squared Euclidean
    /// distance in capacity space, ties broken towards the lexicographically
    /// smallest capacities ([`WarmStartPool::nearest`]).
    fn warm_start(&self, x: &[f64]) -> Option<Vector> {
        let pool = self.pool.read().expect("warm-start pool lock poisoned");
        pool.nearest(x).map(|entry| entry.state.clone())
    }

    /// Evaluates one candidate against the frozen pool: objectives plus the
    /// settled steady state (`None` when the integration failed to settle —
    /// such candidates score zero uptake and never enter the pool).
    fn evaluate_one(&self, x: &[f64]) -> (Vec<f64>, Option<Vector>) {
        let partition = EnzymePartition::new(x.to_vec());
        let nitrogen = partition.total_nitrogen();
        let solved = match self.warm_start(x) {
            Some(y0) => {
                self.warm_starts.fetch_add(1, AtomicOrdering::Relaxed);
                self.evaluator
                    .steady_state_from(&partition, &self.scenario, y0)
            }
            None => {
                self.cold_starts.fetch_add(1, AtomicOrdering::Relaxed);
                self.evaluator.steady_state(&partition, &self.scenario)
            }
        };
        match solved {
            Ok((steady, uptake)) => (vec![-uptake, nitrogen], Some(steady.state)),
            // A pathway that never settles fixes no carbon worth reporting;
            // score it as zero uptake instead of poisoning the front with
            // non-finite objectives.
            Err(_) => (vec![0.0, nitrogen], None),
        }
    }
}

/// Lexicographic total order on capacity vectors (shorter is smaller on a
/// shared prefix). Used only for deterministic tie-breaks and pool sorting.
fn lex_cmp(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

impl MultiObjectiveProblem for OdeLeafRedesignProblem {
    fn num_variables(&self) -> usize {
        pathway_photosynthesis::ENZYME_COUNT
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.bounds.clone()
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.evaluate_one(x).0
    }

    /// Evaluates the batch against the frozen parent pool and collects the
    /// settled steady states as `pending` parents for the *next* batch.
    /// Chunk-safe: reads only frozen state, and the unordered `pending`
    /// appends are normalized (sorted by content) at the next
    /// [`MultiObjectiveProblem::prepare_batch`].
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<(Vec<f64>, f64)> {
        let epoch = self
            .pool
            .read()
            .expect("warm-start pool lock poisoned")
            .epoch;
        let mut results = Vec::with_capacity(xs.len());
        let mut settled: Vec<(Vec<f64>, Vector)> = Vec::with_capacity(xs.len());
        for x in xs {
            let (objectives, steady) = self.evaluate_one(x);
            if let Some(state) = steady {
                settled.push((x.clone(), state));
            }
            results.push((objectives, 0.0));
        }
        let mut pool = self.pool.write().expect("warm-start pool lock poisoned");
        assert_eq!(
            pool.epoch, epoch,
            "OdeLeafRedesignProblem: prepare_batch committed while a batch was still \
             evaluating — this problem instance is being driven by concurrent optimizers \
             (e.g. a multi-island archipelago), which makes warm starts scheduling-dependent; \
             drive it with a single-population optimizer or give each optimizer its own instance"
        );
        pool.pending.extend(settled);
        results
    }

    /// Folds the previous batch's steady states into the bounded parent
    /// library and rebuilds its k-d index (`WarmStartPool::commit`).
    /// Runs once per whole batch (before any chunk), so every chunk of the
    /// incoming batch sees the same frozen library; the canonical merge
    /// order makes the library a pure function of the commit history,
    /// independent of worker scheduling. Every prepare bumps the epoch —
    /// even a no-op commit — so that a *second* driver's prepare
    /// interleaving with a batch in flight trips the guard in
    /// `evaluate_batch` from the very first generation, not only once the
    /// library is non-empty.
    fn prepare_batch(&self, _xs: &[Vec<f64>]) {
        self.pool
            .write()
            .expect("warm-start pool lock poisoned")
            .commit();
    }

    fn name(&self) -> &str {
        "leaf-design-ode"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathway_moo::exec::Executor;
    use pathway_moo::EvalBackend;

    fn small_batch() -> Vec<Vec<f64>> {
        // All three designs settle under the fast integrator (down-scaled
        // partitions relax too slowly for its 800 s horizon).
        let natural = EnzymePartition::natural();
        vec![
            natural.capacities().to_vec(),
            natural.scaled(1.1).capacities().to_vec(),
            natural.scaled(1.3).capacities().to_vec(),
        ]
    }

    #[test]
    fn batched_evaluation_matches_the_per_candidate_path_bit_for_bit() {
        let batched = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let itemwise = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let xs = small_batch();
        let batch = batched.evaluate_batch(&xs);
        for (x, (objectives, violation)) in xs.iter().zip(&batch) {
            assert_eq!(objectives, &itemwise.evaluate(x));
            assert_eq!(*violation, 0.0);
        }
    }

    #[test]
    fn frozen_pool_discards_new_parents_but_keeps_serving_the_old_ones() {
        let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let xs = small_batch();
        problem.prepare_batch(&xs);
        problem.evaluate_batch(&xs);
        problem.prepare_batch(&xs);
        let committed = problem.warm_start_pool_size();
        assert!(committed > 0, "the settling designs were committed");

        problem.freeze_warm_start_pool();
        let novel = vec![EnzymePartition::natural().scaled(1.2).capacities().to_vec()];
        let frozen_scores = problem.evaluate_batch(&novel);
        problem.prepare_batch(&novel);
        assert_eq!(
            problem.warm_start_pool_size(),
            committed,
            "a frozen library must not absorb newly settled parents"
        );
        // The pinned library still serves warm starts, so re-scoring is
        // reproducible batch over batch.
        assert_eq!(problem.evaluate_batch(&novel), frozen_scores);
    }

    #[test]
    fn prepare_commits_parents_and_freezes_them_for_the_next_batch() {
        let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let xs = small_batch();
        assert_eq!(problem.warm_start_pool_size(), 0);
        problem.prepare_batch(&xs);
        let first = problem.evaluate_batch(&xs);
        assert_eq!(
            problem.warm_start_pool_size(),
            0,
            "pending is not committed yet"
        );
        problem.prepare_batch(&xs);
        assert_eq!(problem.warm_start_pool_size(), xs.len());
        // Identical designs warm-started from their own steady states still
        // produce finite, sensible objectives.
        let second = problem.evaluate_batch(&xs);
        for ((first_obj, _), (second_obj, _)) in first.iter().zip(&second) {
            assert!(first_obj[0] < 0.0 && second_obj[0] < 0.0, "positive uptake");
            assert_eq!(first_obj[1], second_obj[1], "nitrogen is exact");
        }
    }

    #[test]
    fn warm_started_generations_are_identical_under_serial_and_pooled_executors() {
        let serial_problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let pooled_problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let serial = Executor::serial();
        let pooled = Executor::new(EvalBackend::Threads(2));
        let xs = small_batch();
        for generation in 0..3 {
            let a = serial.evaluate_batch(&serial_problem, &xs);
            let b = pooled.evaluate_batch(&pooled_problem, &xs);
            assert_eq!(a, b, "generation {generation} diverged");
        }
        assert_eq!(
            serial_problem.warm_start_pool_size(),
            pooled_problem.warm_start_pool_size()
        );
    }

    #[test]
    fn oracle_counters_split_cold_and_warm_starts() {
        let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        let xs = small_batch();
        problem.prepare_batch(&xs);
        problem.evaluate_batch(&xs); // cold pool: every start is cold
        problem.prepare_batch(&xs);
        problem.evaluate_batch(&xs); // committed parents: every start is warm
        let registry = MetricsRegistry::new();
        problem.record_oracle_metrics(&registry);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter("oracle.ode.cold_starts"),
            Some(xs.len() as u64)
        );
        assert_eq!(
            snapshot.counter("oracle.ode.warm_starts"),
            Some(xs.len() as u64)
        );
    }

    #[test]
    fn dimensions_and_name() {
        let problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
        assert_eq!(problem.num_variables(), 23);
        assert_eq!(problem.num_objectives(), 2);
        assert_eq!(problem.bounds().len(), 23);
        assert_eq!(problem.name(), "leaf-design-ode");
    }

    /// Reference nearest-neighbour: the linear scan the k-d tree replaced,
    /// with the same `(distance, lex)` tie-break.
    fn linear_nearest<'a>(entries: &'a [WarmEntry], x: &[f64]) -> Option<&'a WarmEntry> {
        let mut best: Option<(&'a WarmEntry, f64)> = None;
        for entry in entries {
            let distance = squared_distance(&entry.capacities, x);
            let better = match &best {
                None => true,
                Some((incumbent, incumbent_distance)) => {
                    match distance.total_cmp(incumbent_distance) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => {
                            lex_cmp(&entry.capacities, &incumbent.capacities) == Ordering::Less
                        }
                    }
                }
            };
            if better {
                best = Some((entry, distance));
            }
        }
        best.map(|(entry, _)| entry)
    }

    /// A tiny deterministic LCG; coordinates land on a coarse grid so that
    /// distance ties (which exercise the lexicographic tie-break and the
    /// `<=` far-side visit) actually occur.
    fn lcg_coord(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) % 8) as f64 * 0.5
    }

    #[test]
    fn kd_nearest_matches_the_linear_scan_reference_exactly() {
        let dims = 5;
        let mut seed = 42u64;
        let mut pool = WarmStartPool::default();
        for i in 0..200 {
            let capacities: Vec<f64> = (0..dims).map(|_| lcg_coord(&mut seed)).collect();
            pool.pending.push((capacities, Vector::filled(1, i as f64)));
        }
        pool.commit();
        assert!(pool.committed.len() > 100, "grid collisions stay rare-ish");
        assert_eq!(pool.nodes.len(), pool.committed.len());
        for _ in 0..200 {
            let query: Vec<f64> = (0..dims).map(|_| lcg_coord(&mut seed)).collect();
            let from_tree = pool.nearest(&query).expect("library is non-empty");
            let from_scan = linear_nearest(&pool.committed, &query).unwrap();
            assert_eq!(
                from_tree.capacities, from_scan.capacities,
                "query {query:?}"
            );
            assert_eq!(from_tree.state[0], from_scan.state[0]);
        }
    }

    #[test]
    fn library_retains_parents_across_generations_and_prefers_fresh_duplicates() {
        let mut pool = WarmStartPool::default();
        pool.pending.push((vec![1.0, 0.0], Vector::filled(1, 1.0)));
        pool.commit();
        pool.pending.push((vec![0.0, 1.0], Vector::filled(1, 2.0)));
        // The same design re-settled in a later generation.
        pool.pending.push((vec![1.0, 0.0], Vector::filled(1, 3.0)));
        pool.commit();
        // The old wholesale-replacement pool would have dropped nothing here,
        // but a third commit with fresh designs used to forget generation 1;
        // the library keeps both generations, deduplicated.
        assert_eq!(pool.committed.len(), 2);
        let fresh = pool.nearest(&[1.0, 0.0]).unwrap();
        assert_eq!(fresh.stamp, 2, "dedup keeps the newest steady state");
        assert_eq!(fresh.state[0], 3.0);
        let retained = pool.nearest(&[0.0, 1.0]).unwrap();
        assert_eq!(retained.state[0], 2.0);
        pool.pending.push((vec![5.0, 5.0], Vector::filled(1, 4.0)));
        pool.commit();
        assert_eq!(
            pool.committed.len(),
            3,
            "generation 1 survives generation 3"
        );
    }

    #[test]
    fn pool_is_bounded_and_evicts_the_oldest_generations_first() {
        let mut pool = WarmStartPool::default();
        for i in 0..MAX_WARM_START_POOL {
            pool.pending.push((vec![i as f64], Vector::filled(1, 0.0)));
        }
        pool.commit();
        for i in 0..10 {
            pool.pending
                .push((vec![-(1.0 + i as f64)], Vector::filled(1, 1.0)));
        }
        pool.commit();
        assert_eq!(pool.committed.len(), MAX_WARM_START_POOL);
        assert_eq!(pool.nodes.len(), MAX_WARM_START_POOL);
        let newest = pool.committed.iter().filter(|e| e.stamp == 2).count();
        assert_eq!(newest, 10, "the whole fresh generation survives eviction");
    }

    #[test]
    fn lex_cmp_is_a_total_order_with_length_tiebreak() {
        assert_eq!(lex_cmp(&[1.0, 2.0], &[1.0, 3.0]), Ordering::Less);
        assert_eq!(lex_cmp(&[2.0], &[1.0, 9.0]), Ordering::Greater);
        assert_eq!(lex_cmp(&[1.0], &[1.0, 0.0]), Ordering::Less);
        assert_eq!(lex_cmp(&[1.0, 2.0], &[1.0, 2.0]), Ordering::Equal);
    }
}
