//! Report types mirroring the tables and figures of the paper, plus a small
//! plain-text table renderer used by the experiment binaries.

use std::fmt::Write as _;

/// One row of the paper's Table 1 (Pareto-front quality comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageRow {
    /// Algorithm name (`"PMO2"`, `"MOEA-D"`).
    pub algorithm: String,
    /// Number of non-dominated points found.
    pub points: usize,
    /// Relative Pareto coverage R_p.
    pub relative_coverage: f64,
    /// Global Pareto coverage G_p.
    pub global_coverage: f64,
    /// Hypervolume indicator V_p.
    pub hypervolume: f64,
}

impl CoverageRow {
    /// Renders the row as table cells.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.algorithm.clone(),
            self.points.to_string(),
            format!("{:.3}", self.relative_coverage),
            format!("{:.3}", self.global_coverage),
            format!("{:.3}", self.hypervolume),
        ]
    }
}

/// One row of the paper's Table 2 (selected trade-off solutions).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRow {
    /// Selection criterion (`"Closest-to-ideal"`, `"Max CO2 Uptake"`, ...).
    pub selection: String,
    /// CO₂ uptake in µmol m⁻² s⁻¹.
    pub co2_uptake: f64,
    /// Nitrogen in mg/l.
    pub nitrogen: f64,
    /// Robustness yield in percent.
    pub yield_percent: f64,
}

impl SelectionRow {
    /// Renders the row as table cells.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.selection.clone(),
            format!("{:.3}", self.co2_uptake),
            format!("{:.3e}", self.nitrogen),
            format!("{:.0}", self.yield_percent),
        ]
    }
}

/// One series of the paper's Figure 1: the Pareto front of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1Series {
    /// Scenario label, e.g. `"Present: Ci=270, low export"`.
    pub label: String,
    /// `(CO₂ uptake, nitrogen)` points along the front.
    pub points: Vec<(f64, f64)>,
}

/// One bar of the paper's Figure 2: the concentration ratio of one enzyme in
/// the re-engineered leaf relative to the natural leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2Bar {
    /// Enzyme name as labelled in the figure.
    pub enzyme: String,
    /// Ratio of engineered to natural capacity.
    pub ratio: f64,
}

/// One labelled point of the paper's Figure 4 (Geobacter Pareto front).
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4Point {
    /// Point label (A–E in the paper).
    pub label: String,
    /// Electron production in mmol/gDW/h.
    pub electron_production: f64,
    /// Biomass production in 1/h.
    pub biomass_production: f64,
}

/// Renders rows of cells as an aligned plain-text table with a header.
///
/// # Example
///
/// ```
/// use pathway_core::render_table;
///
/// let table = render_table(
///     &["Algorithm", "Points"],
///     &[vec!["PMO2".to_string(), "755".to_string()]],
/// );
/// assert!(table.contains("PMO2"));
/// assert!(table.lines().count() >= 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(widths.len()) {
            let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_row_cells_are_formatted() {
        let row = CoverageRow {
            algorithm: "PMO2".into(),
            points: 755,
            relative_coverage: 1.0,
            global_coverage: 1.0,
            hypervolume: 0.976,
        };
        let cells = row.cells();
        assert_eq!(cells[0], "PMO2");
        assert_eq!(cells[1], "755");
        assert_eq!(cells[4], "0.976");
    }

    #[test]
    fn selection_row_cells_are_formatted() {
        let row = SelectionRow {
            selection: "Max CO2 Uptake".into(),
            co2_uptake: 39.968,
            nitrogen: 2.641e5,
            yield_percent: 65.0,
        };
        let cells = row.cells();
        assert!(cells[1].starts_with("39.968"));
        assert!(cells[2].contains('e'));
        assert_eq!(cells[3], "65");
    }

    #[test]
    fn table_renderer_aligns_columns() {
        let table = render_table(
            &["Name", "Value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["long-name".to_string(), "2".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and separator present, all rows mention their first cell.
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn figure_types_hold_their_data() {
        let series = Figure1Series {
            label: "present".into(),
            points: vec![(15.5, 208_330.0)],
        };
        assert_eq!(series.points.len(), 1);
        let bar = Figure2Bar {
            enzyme: "Rubisco".into(),
            ratio: 0.9,
        };
        assert_eq!(bar.enzyme, "Rubisco");
        let point = Figure4Point {
            label: "A".into(),
            electron_production: 158.14,
            biomass_production: 0.3,
        };
        assert!(point.electron_production > point.biomass_production);
    }
}
