//! Robust metabolic pathway design — the public API of this workspace.
//!
//! This crate reproduces the end-to-end methodology of *Design of Robust
//! Metabolic Pathways* (Umeton et al., DAC 2011):
//!
//! 1. express a metabolic redesign task as a [`pathway_moo::MultiObjectiveProblem`]
//!    — the C3 **leaf redesign** problem (maximize CO₂ uptake, minimize
//!    protein nitrogen) and the ***Geobacter sulfurreducens*** flux problem
//!    (maximize electron and biomass production near steady state);
//! 2. approximate the Pareto front with **PMO2** (an archipelago of NSGA-II
//!    islands with periodic migration), driven through the generic
//!    [`Study`] facade and the step-driven engine of
//!    [`pathway_moo::engine`] (observers, early stopping,
//!    checkpoint/resume);
//! 3. **mine** the front: closest-to-ideal, shadow minima, equally spaced
//!    representatives;
//! 4. score the mined candidates with the **robustness yield** Γ under
//!    Monte-Carlo perturbation of the design variables.
//!
//! # Quick start
//!
//! ```
//! use pathway_core::prelude::*;
//!
//! // A deliberately small study so the example runs in a few seconds.
//! let study = LeafDesignStudy::new(Scenario::present_low_export())
//!     .with_budget(24, 40)
//!     .with_robustness_trials(200);
//! let outcome = study.run(7);
//! assert!(!outcome.front.is_empty());
//! let best_uptake = outcome.max_uptake();
//! assert!(best_uptake.uptake > Scenario::NATURAL_UPTAKE * 0.8);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod design;
mod geobacter_problem;
mod ode_leaf_problem;
mod photosynthesis_problem;
mod registry;
mod report;
mod study;

pub mod jsonlite;
pub mod obs;
pub mod prelude;
pub mod sweep;

pub use design::{
    GeobacterOutcome, GeobacterStudy, LeafDesign, LeafDesignOutcome, LeafDesignStudy,
    SelectedLeafDesigns,
};
pub use geobacter_problem::{GeobacterFluxProblem, GeobacterSolution};
pub use ode_leaf_problem::OdeLeafRedesignProblem;
pub use photosynthesis_problem::LeafRedesignProblem;
pub use registry::{
    owned_resume_spec_driver, owned_spec_driver, resume_spec_driver,
    resume_spec_driver_with_executor, spec_driver, spec_driver_with_executor,
    validate_spec_against_problem, AnyProblem, ProblemInfo, PROBLEM_CATALOG,
};
pub use report::{
    render_table, CoverageRow, Figure1Series, Figure2Bar, Figure4Point, SelectionRow,
};
pub use study::{Study, StudyOutcome};
