//! A small, dependency-free JSON value type with a parser and printers.
//!
//! The workspace vendors no serialization crates, but the sweep ledger
//! (`BENCH_sweep.json`) has to be machine-readable by ordinary tooling —
//! so this module hand-rolls the minimum: an ordered [`JsonValue`] tree, a
//! recursive-descent parser for standard JSON, a deterministic two-space
//! pretty printer, and a single-line compact printer
//! ([`JsonValue::to_compact`]) for line-delimited wire protocols. Object
//! keys keep their insertion order, which makes emitted ledgers stable
//! byte-for-byte across runs of the same data.
//!
//! Since `pathway serve` feeds this parser untrusted socket input, it is
//! hardened accordingly: nesting deeper than [`MAX_DEPTH`] is rejected with
//! an explicit error (the recursive-descent parser would otherwise turn
//! attacker-chosen `[[[[…` into a stack overflow), and truncated documents
//! — unterminated strings, escapes cut short — fail with positioned
//! errors rather than panics. `crates/core/tests/jsonlite_roundtrip.rs`
//! property-tests the parse/print cycle.

use std::fmt;

/// Maximum container nesting depth [`JsonValue::parse`] accepts. Deeper
/// documents fail with a positioned [`JsonError`] instead of risking a
/// parser stack overflow on hostile input. 64 is far beyond anything the
/// ledger or the `pathway serve` wire protocol produces (their documents
/// are ≤ 6 levels deep).
pub const MAX_DEPTH: usize = 64;

/// A parsed or constructed JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed as (and round-trips as) an integer.
    Int(i64),
    /// Any other finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(text) => Some(text),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(value) => Some(*value as f64),
            JsonValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(value) => Some(*value),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// True when this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Builds a string value. Sugar for wire-message construction.
    pub fn string(text: impl Into<String>) -> JsonValue {
        JsonValue::String(text.into())
    }

    /// Builds an object from `(key, value)` pairs, preserving order. Sugar
    /// for wire-message construction:
    ///
    /// ```
    /// use pathway_core::jsonlite::JsonValue;
    ///
    /// let msg = JsonValue::object([
    ///     ("cmd", JsonValue::string("status")),
    ///     ("ok", JsonValue::Bool(true)),
    /// ]);
    /// assert_eq!(msg.to_compact(), r#"{"cmd":"status","ok":true}"#);
    /// ```
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(key, value)| (key.into(), value))
                .collect(),
        )
    }

    /// Parses a JSON document. Trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset and message. Containers nested
    /// deeper than [`MAX_DEPTH`] are rejected (see the module docs).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut at = 0usize;
        let value = parse_value(bytes, &mut at, 0)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(JsonError::at(at, "trailing characters after the document"));
        }
        Ok(value)
    }

    /// Renders the value as pretty-printed JSON (two-space indent, `\n`
    /// line endings, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        out.push('\n');
        out
    }

    /// Renders the value as compact single-line JSON (no whitespace, no
    /// trailing newline). Strings escape `\n` and control characters, so
    /// the output never contains a literal newline — this is the framing
    /// guarantee the line-delimited `pathway serve` wire protocol relies
    /// on.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }
}

/// A JSON parse failure: where (byte offset) and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn parse_value(bytes: &[u8], at: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err(JsonError::at(*at, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, at, check_depth(at, depth)?),
        Some(b'[') => parse_array(bytes, at, check_depth(at, depth)?),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, at)?)),
        Some(b't') => parse_literal(bytes, at, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, at, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, at, "null", JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, at),
        Some(&other) => Err(JsonError::at(
            *at,
            format!("unexpected character '{}'", other as char),
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    at: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*at..].starts_with(literal.as_bytes()) {
        *at += literal.len();
        Ok(value)
    } else {
        Err(JsonError::at(*at, format!("expected '{literal}'")))
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *at;
    while *at < bytes.len() && matches!(bytes[*at], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *at += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*at]).expect("ascii number bytes");
    let is_integral = !text.contains(['.', 'e', 'E']);
    if is_integral {
        if let Ok(value) = text.parse::<i64>() {
            return Ok(JsonValue::Int(value));
        }
    }
    match text.parse::<f64>() {
        Ok(value) if value.is_finite() => Ok(JsonValue::Number(value)),
        _ => Err(JsonError::at(start, format!("invalid number '{text}'"))),
    }
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*at], b'"');
    *at += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err(JsonError::at(*at, "unterminated string")),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                let escape = bytes
                    .get(*at)
                    .ok_or_else(|| JsonError::at(*at, "unterminated escape"))?;
                *at += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let first = parse_hex4(bytes, at)?;
                        let scalar = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if bytes.get(*at) == Some(&b'\\') && bytes.get(*at + 1) == Some(&b'u') {
                                *at += 2;
                                let second = parse_hex4(bytes, at)?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(JsonError::at(*at, "invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                return Err(JsonError::at(*at, "unpaired surrogate"));
                            }
                        } else {
                            first
                        };
                        let ch = char::from_u32(scalar)
                            .ok_or_else(|| JsonError::at(*at, "invalid unicode escape"))?;
                        out.push(ch);
                    }
                    other => {
                        return Err(JsonError::at(
                            *at,
                            format!("invalid escape '\\{}'", *other as char),
                        ))
                    }
                }
            }
            Some(&byte) if byte < 0x20 => {
                return Err(JsonError::at(*at, "unescaped control character"));
            }
            Some(_) => {
                // Consume one full UTF-8 scalar from the source.
                let text = std::str::from_utf8(&bytes[*at..])
                    .map_err(|_| JsonError::at(*at, "invalid UTF-8"))?;
                let ch = text.chars().next().expect("non-empty UTF-8 tail");
                out.push(ch);
                *at += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: &mut usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(*at..*at + 4)
        .ok_or_else(|| JsonError::at(*at, "truncated \\u escape"))?;
    let text = std::str::from_utf8(hex).map_err(|_| JsonError::at(*at, "invalid \\u escape"))?;
    let value = u32::from_str_radix(text, 16)
        .map_err(|_| JsonError::at(*at, format!("invalid \\u escape '{text}'")))?;
    *at += 4;
    Ok(value)
}

/// Bumps the container nesting depth, rejecting documents deeper than
/// [`MAX_DEPTH`] before the parser recurses into them.
fn check_depth(at: &usize, depth: usize) -> Result<usize, JsonError> {
    if depth >= MAX_DEPTH {
        return Err(JsonError::at(
            *at,
            format!("nesting deeper than {MAX_DEPTH} levels"),
        ));
    }
    Ok(depth + 1)
}

fn parse_array(bytes: &[u8], at: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *at += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, at, depth)?);
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => {
                *at += 1;
            }
            Some(b']') => {
                *at += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(JsonError::at(*at, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(bytes: &[u8], at: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *at += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, at);
        if bytes.get(*at) != Some(&b'"') {
            return Err(JsonError::at(*at, "expected a string object key"));
        }
        let key = parse_string(bytes, at)?;
        skip_ws(bytes, at);
        if bytes.get(*at) != Some(&b':') {
            return Err(JsonError::at(*at, "expected ':' after object key"));
        }
        *at += 1;
        let value = parse_value(bytes, at, depth)?;
        fields.push((key, value));
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => {
                *at += 1;
            }
            Some(b'}') => {
                *at += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(JsonError::at(*at, "expected ',' or '}' in object")),
        }
    }
}

fn write_value(out: &mut String, value: &JsonValue, indent: usize) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Int(number) => out.push_str(&number.to_string()),
        // `{:?}` prints the shortest decimal that round-trips the f64
        // exactly — ledger metrics survive a parse/print cycle bit-for-bit.
        JsonValue::Number(number) => out.push_str(&format!("{number:?}")),
        JsonValue::String(text) => write_string(out, text),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (position, item) in items.iter().enumerate() {
                if position > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        JsonValue::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (position, (key, item)) in fields.iter().enumerate() {
                if position > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Int(number) => out.push_str(&number.to_string()),
        // Same shortest-round-trip rendering as the pretty printer.
        JsonValue::Number(number) => out.push_str(&format!("{number:?}")),
        JsonValue::String(text) => write_string(out, text),
        JsonValue::Array(items) => {
            out.push('[');
            for (position, item) in items.iter().enumerate() {
                if position > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            out.push('{');
            for (position, (key, item)) in fields.iter().enumerate() {
                if position > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reprints_a_document() {
        let text = r#"{"a": 1, "b": [true, null, -2.5], "c": {"d": "x\ny"}}"#;
        let value = JsonValue::parse(text).unwrap();
        assert_eq!(value.get("a").and_then(JsonValue::as_i64), Some(1));
        assert_eq!(value.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            value.get("c").unwrap().get("d").and_then(JsonValue::as_str),
            Some("x\ny")
        );
        // print -> parse is the identity.
        let reparsed = JsonValue::parse(&value.to_pretty()).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        let original = JsonValue::Object(vec![
            ("int".to_string(), JsonValue::Int(i64::MAX)),
            ("hv".to_string(), JsonValue::Number(0.1 + 0.2)),
            ("tiny".to_string(), JsonValue::Number(5e-324)),
        ]);
        let reparsed = JsonValue::parse(&original.to_pretty()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "quote\" slash\\ newline\n tab\t unicode \u{1F600} control\u{0001}";
        let value = JsonValue::String(tricky.to_string());
        let reparsed = JsonValue::parse(&value.to_pretty()).unwrap();
        assert_eq!(reparsed.as_str(), Some(tricky));
        // Surrogate-pair escapes parse too.
        let emoji = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(emoji.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1,}",
            "[1e999]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
