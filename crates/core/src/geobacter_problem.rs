use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pathway_fba::geobacter::GeobacterModel;
use pathway_fba::{
    steady_state_violation, steady_state_violation_batch, FluxBalanceAnalysis, MetabolicModel,
};
use pathway_moo::engine::MetricsRegistry;
use pathway_moo::MultiObjectiveProblem;

/// Cumulative oracle-call counters, shared across clones of a problem (an
/// `Arc` inside the problem) so that per-chunk clones handed to worker
/// threads all feed one tally.
#[derive(Debug, Default)]
struct OracleStats {
    /// Full FBA (simplex) solves — two at construction for the reference
    /// distribution, none on the evaluation path.
    fba_solves: AtomicU64,
    /// Batched steady-state kernels (one sparse × dense product per batch).
    batch_kernels: AtomicU64,
    /// Candidates scored through the steady-state oracle.
    candidates: AtomicU64,
}

/// A candidate solution of the Geobacter flux problem, decoded back into the
/// quantities the paper reports (Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct GeobacterSolution {
    /// Electron production flux (mmol/gDW/h).
    pub electron_production: f64,
    /// Biomass production flux (1/h).
    pub biomass_production: f64,
    /// Steady-state violation ‖S·x‖ of the flux vector.
    pub violation: f64,
}

/// The paper's *Geobacter sulfurreducens* problem: perturb the genome-scale
/// flux vector to simultaneously maximize electron production and biomass
/// production while preferring steady-state solutions.
///
/// Decision variables are the full flux vector (608 reactions at paper scale).
/// The search box is centred on a steady-state reference distribution (the
/// midpoint of the max-biomass and max-electron FBA optima) so that candidate
/// solutions start out close to feasibility, mirroring the paper's
/// initial-guess-plus-perturbation search; the constraint violation reported
/// to the optimizer is the amount of steady-state residual exceeding the
/// configured tolerance, which makes the algorithm "reward less violating
/// solutions" exactly as Section 3.2 describes.
#[derive(Debug, Clone)]
pub struct GeobacterFluxProblem {
    model: MetabolicModel,
    biomass_reaction: usize,
    electron_reaction: usize,
    reference: Vec<f64>,
    bounds: Vec<(f64, f64)>,
    violation_tolerance: f64,
    oracle: Arc<OracleStats>,
}

impl GeobacterFluxProblem {
    /// Builds the problem from a synthetic Geobacter model.
    ///
    /// The default exploration radius is ±5 mmol/gDW/h around the reference
    /// distribution and the violation tolerance scales with the model size
    /// (`0.035 · radius · reactions`), mirroring the paper's search that
    /// *prefers* steady-state solutions without ever reaching an exact
    /// steady state.
    ///
    /// # Errors
    ///
    /// Propagates FBA failures while computing the reference flux distribution.
    pub fn new(geobacter: &GeobacterModel) -> Result<Self, pathway_fba::FbaError> {
        let radius = 5.0;
        let tolerance = 0.035 * radius * geobacter.model().num_reactions() as f64;
        Self::with_exploration(geobacter, radius, tolerance)
    }

    /// Builds the problem with an explicit per-flux exploration radius around
    /// the reference distribution and an explicit violation tolerance.
    ///
    /// # Errors
    ///
    /// Propagates FBA failures while computing the reference flux distribution.
    pub fn with_exploration(
        geobacter: &GeobacterModel,
        radius: f64,
        violation_tolerance: f64,
    ) -> Result<Self, pathway_fba::FbaError> {
        let model = geobacter.model().clone();
        let fba = FluxBalanceAnalysis::new(&model);
        let max_biomass = fba.maximize_reaction(geobacter.biomass_reaction())?;
        let max_electron = fba.maximize_reaction(geobacter.electron_reaction())?;
        let reference: Vec<f64> = max_biomass
            .fluxes
            .iter()
            .zip(max_electron.fluxes.iter())
            .map(|(a, b)| 0.5 * (a + b))
            .collect();
        let flux_bounds = model.flux_bounds();
        let bounds: Vec<(f64, f64)> = reference
            .iter()
            .zip(flux_bounds.iter())
            .map(|(&r, b)| {
                let lower = (r - radius).max(b.lower);
                let upper = (r + radius).min(b.upper);
                if lower <= upper {
                    (lower, upper)
                } else {
                    (b.lower, b.upper)
                }
            })
            .collect();
        let oracle = Arc::new(OracleStats::default());
        oracle.fba_solves.fetch_add(2, Ordering::Relaxed);
        Ok(GeobacterFluxProblem {
            biomass_reaction: geobacter.biomass_reaction(),
            electron_reaction: geobacter.electron_reaction(),
            model,
            reference,
            bounds,
            violation_tolerance,
            oracle,
        })
    }

    /// Dumps the cumulative oracle counters into `registry` as
    /// `oracle.fba.solves`, `oracle.fba.batch_kernels` and
    /// `oracle.fba.candidates`. Call once when an invocation finishes —
    /// the counts are totals since construction, shared by every clone of
    /// this problem.
    pub fn record_oracle_metrics(&self, registry: &MetricsRegistry) {
        registry.add(
            "oracle.fba.solves",
            self.oracle.fba_solves.load(Ordering::Relaxed),
        );
        registry.add(
            "oracle.fba.batch_kernels",
            self.oracle.batch_kernels.load(Ordering::Relaxed),
        );
        registry.add(
            "oracle.fba.candidates",
            self.oracle.candidates.load(Ordering::Relaxed),
        );
    }

    /// The reference (steady-state) flux distribution the search box is
    /// centred on.
    pub fn reference_fluxes(&self) -> &[f64] {
        &self.reference
    }

    /// Steady-state violation of the reference distribution (essentially zero).
    pub fn reference_violation(&self) -> f64 {
        steady_state_violation(&self.model, &self.reference)
            .expect("the reference flux vector has the model's dimension")
    }

    /// Decodes a decision vector into the reported quantities.
    pub fn decode(&self, x: &[f64]) -> GeobacterSolution {
        GeobacterSolution {
            electron_production: x[self.electron_reaction],
            biomass_production: x[self.biomass_reaction],
            violation: steady_state_violation(&self.model, x).unwrap_or(f64::INFINITY),
        }
    }

    /// The underlying stoichiometric model.
    pub fn model(&self) -> &MetabolicModel {
        &self.model
    }
}

impl MultiObjectiveProblem for GeobacterFluxProblem {
    fn num_variables(&self) -> usize {
        self.model.num_reactions()
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.bounds.clone()
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        vec![-x[self.electron_reaction], -x[self.biomass_reaction]]
    }

    /// Whole-batch oracle: the objectives are plain flux reads, and the
    /// steady-state residuals of the entire batch are computed as **one**
    /// sparse matrix × dense matrix product
    /// ([`steady_state_violation_batch`]) instead of one sparse mat-vec per
    /// candidate — the sparse structure of `S` is traversed once per
    /// generation. Bit-identical to the per-candidate path, so batched runs
    /// keep the serial/threaded determinism contract.
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<(Vec<f64>, f64)> {
        let reactions = self.model.num_reactions();
        self.oracle
            .candidates
            .fetch_add(xs.len() as u64, Ordering::Relaxed);
        if xs.is_empty() || xs.iter().any(|x| x.len() != reactions) {
            // Mis-sized candidates score INFINITY violation per candidate in
            // the itemwise path; fall back to it rather than failing the
            // whole batch.
            return xs
                .iter()
                .map(|x| (self.evaluate(x), self.constraint_violation(x)))
                .collect();
        }
        self.oracle.batch_kernels.fetch_add(1, Ordering::Relaxed);
        let residuals = steady_state_violation_batch(&self.model, xs)
            .expect("candidate lengths were checked above");
        xs.iter()
            .zip(residuals)
            .map(|(x, residual)| {
                (
                    self.evaluate(x),
                    (residual - self.violation_tolerance).max(0.0),
                )
            })
            .collect()
    }

    fn constraint_violation(&self, x: &[f64]) -> f64 {
        let violation = steady_state_violation(&self.model, x).unwrap_or(f64::INFINITY);
        (violation - self.violation_tolerance).max(0.0)
    }

    fn name(&self) -> &str {
        "geobacter-flux"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> GeobacterFluxProblem {
        let model = GeobacterModel::builder().reactions(64).build();
        GeobacterFluxProblem::new(&model).expect("small model is feasible")
    }

    #[test]
    fn dimensions_follow_the_model() {
        let problem = small_problem();
        assert_eq!(problem.num_variables(), 64);
        assert_eq!(problem.num_objectives(), 2);
        assert_eq!(problem.bounds().len(), 64);
        assert_eq!(problem.name(), "geobacter-flux");
    }

    #[test]
    fn reference_distribution_is_nearly_steady_state() {
        let problem = small_problem();
        assert!(problem.reference_violation() < 1e-6);
    }

    #[test]
    fn reference_is_inside_the_search_box() {
        let problem = small_problem();
        for (value, (lower, upper)) in problem.reference_fluxes().iter().zip(problem.bounds()) {
            assert!(*value >= lower - 1e-9 && *value <= upper + 1e-9);
        }
    }

    #[test]
    fn objectives_are_negated_fluxes() {
        let problem = small_problem();
        let x = problem.reference_fluxes().to_vec();
        let objectives = problem.evaluate(&x);
        let decoded = problem.decode(&x);
        assert!((objectives[0] + decoded.electron_production).abs() < 1e-12);
        assert!((objectives[1] + decoded.biomass_production).abs() < 1e-12);
    }

    #[test]
    fn violation_is_zero_at_the_reference_and_grows_with_imbalance() {
        let problem = small_problem();
        let reference = problem.reference_fluxes().to_vec();
        assert_eq!(problem.constraint_violation(&reference), 0.0);
        let mut unbalanced = reference.clone();
        unbalanced[0] += 50.0;
        assert!(problem.constraint_violation(&unbalanced) > 0.0);
    }

    #[test]
    fn batched_evaluation_matches_itemwise_calls() {
        let problem = small_problem();
        let mut unbalanced = problem.reference_fluxes().to_vec();
        unbalanced[0] += 50.0;
        let xs = vec![problem.reference_fluxes().to_vec(), unbalanced];
        let batch = problem.evaluate_batch(&xs);
        for (x, (objectives, violation)) in xs.iter().zip(&batch) {
            assert_eq!(objectives, &problem.evaluate(x));
            assert_eq!(*violation, problem.constraint_violation(x));
        }
        assert!(batch[1].1 > 0.0);
    }

    #[test]
    fn mid_scale_problem_scales_to_hundreds_of_fluxes() {
        let model = GeobacterModel::builder().reactions(200).build();
        let problem = GeobacterFluxProblem::new(&model).expect("mid-scale model is feasible");
        assert_eq!(problem.num_variables(), 200);
    }

    #[test]
    fn oracle_counters_are_shared_by_clones_and_count_batches() {
        let problem = small_problem();
        let clone = problem.clone();
        let xs = vec![problem.reference_fluxes().to_vec(); 3];
        clone.evaluate_batch(&xs);
        let registry = MetricsRegistry::new();
        problem.record_oracle_metrics(&registry);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("oracle.fba.solves"), Some(2));
        assert_eq!(snapshot.counter("oracle.fba.batch_kernels"), Some(1));
        assert_eq!(snapshot.counter("oracle.fba.candidates"), Some(3));
    }

    /// The full 608-reaction problem of Figure 4. The workspace builds
    /// `pathway-linalg`/`pathway-fba` with `opt-level = 2` even in dev, so
    /// the simplex solve finishes in a few seconds under `cargo test`.
    #[test]
    fn paper_scale_problem_has_608_variables() {
        let model = GeobacterModel::builder().reactions(608).build();
        let problem = GeobacterFluxProblem::new(&model).expect("paper-scale model is feasible");
        assert_eq!(problem.num_variables(), 608);
    }
}
