//! The generic study facade: one configurable PMO2 driver for any problem.
//!
//! [`Study`] replaces the two copy-pasted study builders of earlier
//! revisions ([`crate::LeafDesignStudy`] and [`crate::GeobacterStudy`] are
//! now thin wrappers over it): it owns a
//! [`MultiObjectiveProblem`], builds the paper's archipelago from its
//! budget/migration/backend knobs, and drives it through the
//! [`pathway_moo::engine`] — so observers, early stopping and
//! checkpoint/resume compose with every problem without touching algorithm
//! internals.

use std::sync::Arc;

use pathway_moo::engine::{Driver, OptimizerSpec, RunSpec, SpecError, StoppingRule};
use pathway_moo::exec::Executor;
use pathway_moo::{
    Archipelago, ArchipelagoConfig, EvalBackend, Individual, MigrationTopology,
    MultiObjectiveProblem, Nsga2Config,
};

use crate::AnyProblem;

/// What a [`Study`] run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyOutcome {
    /// The merged non-dominated front across all islands.
    pub front: Vec<Individual>,
    /// Total number of candidate evaluations actually spent (initial
    /// populations included).
    pub evaluations: usize,
    /// Number of generations actually run (smaller than the configured
    /// budget when an extra stopping rule fired first).
    pub generations: usize,
}

/// An end-to-end PMO2 study over any [`MultiObjectiveProblem`].
///
/// The defaults are the paper's configuration: 2 NSGA-II islands with
/// broadcast migration every 200 generations at probability 0.5, and a
/// moderate budget (population 80, 400 generations).
///
/// # Example
///
/// ```
/// use pathway_core::prelude::*;
///
/// let study = Study::new(LeafRedesignProblem::new(Scenario::present_low_export()))
///     .with_budget(24, 30)
///     .with_migration(10, 0.5);
/// let outcome = study.run(3);
/// assert!(!outcome.front.is_empty());
/// assert_eq!(outcome.evaluations, 2 * 24 * (30 + 1));
/// ```
///
/// For observers, extra stopping rules or checkpoint/resume, drop down to
/// the driver:
///
/// ```
/// use pathway_core::prelude::*;
///
/// let study = Study::new(LeafRedesignProblem::new(Scenario::present_low_export()))
///     .with_budget(16, 40)
///     .with_migration(10, 0.5)
///     .with_stopping(StoppingRule::HypervolumeStagnation { window: 8, epsilon: 1e-6 });
/// let history = HistoryObserver::new();
/// let mut driver = study.driver(7).with_observer(history.clone());
/// let front = driver.run();
/// assert!(!front.is_empty());
/// assert_eq!(history.reports().len(), driver.generation());
/// ```
#[derive(Debug, Clone)]
pub struct Study<P> {
    problem: P,
    islands: usize,
    /// Per-island NSGA-II configuration. `population_size` and `backend`
    /// are set through the builder methods; `generations` is overridden by
    /// the study's own budget when the archipelago is built.
    island: Nsga2Config,
    generations: usize,
    migration_interval: usize,
    migration_probability: f64,
    topology: MigrationTopology,
    extra_stopping: Option<StoppingRule>,
    reference_point: Option<Vec<f64>>,
    executor: Option<Arc<Executor>>,
}

impl<P: MultiObjectiveProblem> Study<P> {
    /// Creates a study over `problem` with the paper's PMO2 configuration
    /// and a moderate default budget.
    pub fn new(problem: P) -> Self {
        Study {
            problem,
            islands: 2,
            island: Nsga2Config {
                population_size: 80,
                ..Default::default()
            },
            generations: 400,
            migration_interval: 200,
            migration_probability: 0.5,
            topology: MigrationTopology::Broadcast,
            extra_stopping: None,
            reference_point: None,
            executor: None,
        }
    }

    /// Overrides the per-island population size and total generation budget.
    /// The migration interval is clamped to the new budget.
    #[must_use]
    pub fn with_budget(mut self, population: usize, generations: usize) -> Self {
        self.island.population_size = population;
        self.generations = generations;
        self.migration_interval = self.migration_interval.min(generations.max(1));
        self
    }

    /// Overrides the number of islands.
    #[must_use]
    pub fn with_islands(mut self, islands: usize) -> Self {
        self.islands = islands;
        self
    }

    /// Overrides the migration interval and probability.
    #[must_use]
    pub fn with_migration(mut self, interval: usize, probability: f64) -> Self {
        self.migration_interval = interval;
        self.migration_probability = probability;
        self
    }

    /// Overrides the migration topology.
    #[must_use]
    pub fn with_topology(mut self, topology: MigrationTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Overrides the evaluation backend each island uses for its offspring
    /// batches. Results are bit-identical across backends for a fixed seed.
    /// The archipelago builds **one** persistent executor from this backend
    /// and shares it across every island for the lifetime of the run.
    #[must_use]
    pub fn with_backend(mut self, backend: EvalBackend) -> Self {
        self.island.backend = backend;
        self
    }

    /// Shares an existing evaluation [`Executor`] with every optimizer this
    /// study builds, instead of letting each build its own from the backend
    /// configuration. Useful when several studies (e.g. a parameter sweep)
    /// should share one worker pool. Executors never change results.
    #[must_use]
    pub fn with_executor(mut self, executor: Arc<Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Overrides the full per-island NSGA-II configuration (genetic-operator
    /// knobs included). The configuration's `generations` field is ignored —
    /// the study's own budget governs run length.
    #[must_use]
    pub fn with_island_config(mut self, island: Nsga2Config) -> Self {
        self.island = island;
        self
    }

    /// Adds a stopping rule beside the generation budget — the run ends as
    /// soon as either fires. Call repeatedly to compose several rules.
    #[must_use]
    pub fn with_stopping(mut self, rule: StoppingRule) -> Self {
        self.extra_stopping = Some(match self.extra_stopping.take() {
            Some(existing) => StoppingRule::any_of([existing, rule]),
            None => rule,
        });
        self
    }

    /// Fixes the hypervolume reference point used by generation reports and
    /// stagnation detection (otherwise one is derived from the first
    /// generation's front).
    #[must_use]
    pub fn with_reference_point(mut self, reference: Vec<f64>) -> Self {
        self.reference_point = Some(reference);
        self
    }

    /// The problem under study.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// The generation budget.
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// The archipelago configuration this study will run.
    pub fn archipelago_config(&self) -> ArchipelagoConfig {
        ArchipelagoConfig {
            islands: self.islands,
            island_config: Nsga2Config {
                generations: self.generations,
                ..self.island
            },
            migration_interval: self.migration_interval,
            migration_probability: self.migration_probability,
            topology: self.topology,
        }
    }

    /// A fresh archipelago for this study, seeded deterministically (with
    /// the study's shared executor installed, when one was configured).
    pub fn optimizer(&self, seed: u64) -> Archipelago {
        let mut archipelago = Archipelago::new(self.archipelago_config(), seed);
        if let Some(executor) = &self.executor {
            archipelago.set_executor(Arc::clone(executor));
        }
        archipelago
    }

    /// A [`Driver`] over a fresh archipelago, with the study's generation
    /// budget (plus any [`Study::with_stopping`] rules) installed as the
    /// stopping rule. Attach observers or take checkpoints on the returned
    /// driver.
    pub fn driver(&self, seed: u64) -> Driver<&P, Archipelago> {
        let mut rules = vec![StoppingRule::MaxGenerations(self.generations)];
        if let Some(extra) = &self.extra_stopping {
            rules.push(extra.clone());
        }
        let mut driver = Driver::new(self.optimizer(seed), &self.problem)
            .with_stopping(StoppingRule::any_of(rules));
        if let Some(reference) = &self.reference_point {
            driver = driver.with_reference_point(reference.clone());
        }
        driver
    }

    /// Runs the study to completion with a deterministic seed.
    pub fn run(&self, seed: u64) -> StudyOutcome {
        let mut driver = self.driver(seed);
        let front = driver.run();
        StudyOutcome {
            front,
            evaluations: driver.optimizer().evaluations(),
            generations: driver.generation(),
        }
    }
}

impl Study<AnyProblem> {
    /// Builds a study from a declarative [`RunSpec`] whose optimizer is the
    /// archipelago: the problem is resolved through the registry
    /// ([`AnyProblem::from_spec`]) and every archipelago/stopping knob of
    /// the spec is carried over. The spec's seed is *not* baked in — pass it
    /// (or any other seed) to [`Study::run`] / [`Study::driver`].
    ///
    /// For NSGA-II or MOEA/D specs use [`crate::spec_driver`], which drives
    /// any optimizer kind.
    ///
    /// # Errors
    ///
    /// [`SpecError::Field`] when the spec's optimizer is not the archipelago
    /// or its problem cannot be resolved.
    ///
    /// # Example
    ///
    /// ```
    /// use pathway_core::prelude::*;
    ///
    /// let spec = RunSpec::from_text("\
    /// pathway-spec v1
    /// [problem]
    /// name = schaffer
    /// [optimizer]
    /// kind = archipelago
    /// population = 16
    /// migration_interval = 5
    /// [stop]
    /// max_generations = 10
    /// ").unwrap();
    /// let outcome = Study::from_spec(&spec).unwrap().run(spec.seed);
    /// assert!(!outcome.front.is_empty());
    /// ```
    pub fn from_spec(spec: &RunSpec) -> Result<Self, SpecError> {
        let OptimizerSpec::Archipelago(archipelago) = &spec.optimizer else {
            return Err(SpecError::field(
                "optimizer.kind",
                format!(
                    "Study::from_spec drives the archipelago, not '{}' (use spec_driver for \
                     other optimizer kinds)",
                    spec.optimizer.kind()
                ),
            ));
        };
        let problem = AnyProblem::from_spec(&spec.problem)?;
        crate::validate_spec_against_problem(spec, &problem)?;
        let mut study = Study::new(problem)
            .with_islands(archipelago.islands)
            .with_island_config(archipelago.island.config(spec.stopping.max_generations))
            .with_budget(archipelago.island.population, spec.stopping.max_generations)
            .with_migration(
                archipelago.migration_interval,
                archipelago.migration_probability,
            )
            .with_topology(archipelago.topology);
        if let Some(budget) = spec.stopping.max_evaluations {
            study = study.with_stopping(StoppingRule::MaxEvaluations(budget));
        }
        if let Some((window, epsilon)) = spec.stopping.stagnation {
            study = study.with_stopping(StoppingRule::HypervolumeStagnation { window, epsilon });
        }
        if let Some(reference) = &spec.reference_point {
            study = study.with_reference_point(reference.clone());
        }
        Ok(study)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeafRedesignProblem;
    use pathway_moo::engine::HistoryObserver;
    use pathway_moo::problems::Schaffer;
    use pathway_photosynthesis::Scenario;

    fn schaffer_study() -> Study<Schaffer> {
        Study::new(Schaffer)
            .with_budget(20, 15)
            .with_migration(5, 0.5)
    }

    #[test]
    fn run_reports_actual_budget_spent() {
        let outcome = schaffer_study().run(5);
        assert!(!outcome.front.is_empty());
        assert_eq!(outcome.generations, 15);
        assert_eq!(outcome.evaluations, 2 * 20 * (15 + 1));
    }

    #[test]
    fn study_matches_a_raw_archipelago_run() {
        let study = schaffer_study();
        let via_study = study.run(11);
        let via_archipelago = study.optimizer(11).run(&Schaffer);
        assert_eq!(via_study.front, via_archipelago);
    }

    #[test]
    fn extra_stopping_rules_end_the_run_early() {
        let outcome = schaffer_study()
            .with_stopping(StoppingRule::MaxEvaluations(2 * 20 * 3))
            .run(2);
        assert!(outcome.generations < 15);
        assert!(outcome.evaluations <= 2 * 20 * 4);
    }

    #[test]
    fn driver_exposes_observers_and_checkpoints() {
        let study = schaffer_study();
        let history = HistoryObserver::new();
        let mut driver = study.driver(9).with_observer(history.clone());
        driver.step();
        let checkpoint = driver.checkpoint();
        assert_eq!(checkpoint.generation, 1);
        assert_eq!(history.reports().len(), 1);
    }

    #[test]
    fn shared_executor_changes_nothing_but_the_pool() {
        let plain = schaffer_study().with_backend(EvalBackend::Serial).run(7);
        let pool = Executor::shared(EvalBackend::Threads(2));
        let pooled = schaffer_study().with_executor(pool).run(7);
        assert_eq!(plain.front, pooled.front);
        assert_eq!(plain.evaluations, pooled.evaluations);
    }

    #[test]
    fn leaf_problem_study_runs_end_to_end() {
        let study = Study::new(LeafRedesignProblem::new(Scenario::present_low_export()))
            .with_budget(12, 6)
            .with_migration(3, 0.5);
        let outcome = study.run(1);
        assert!(!outcome.front.is_empty());
        assert_eq!(outcome.front[0].objectives.len(), 2);
    }
}
