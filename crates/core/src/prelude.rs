//! Convenience re-exports for downstream users.
//!
//! ```
//! use pathway_core::prelude::*;
//!
//! let problem = LeafRedesignProblem::new(Scenario::present_low_export());
//! assert_eq!(problem.num_variables(), 23);
//! ```

pub use crate::{
    resume_spec_driver, resume_spec_driver_with_executor, spec_driver, spec_driver_with_executor,
    validate_spec_against_problem, AnyProblem, GeobacterFluxProblem, GeobacterOutcome,
    GeobacterSolution, GeobacterStudy, LeafDesign, LeafDesignOutcome, LeafDesignStudy,
    LeafRedesignProblem, OdeLeafRedesignProblem, ProblemInfo, SelectedLeafDesigns, Study,
    StudyOutcome, PROBLEM_CATALOG,
};

pub use pathway_fba::geobacter::GeobacterModel;
pub use pathway_fba::{FluxBalanceAnalysis, MetabolicModel};
pub use pathway_moo::engine::{
    AnyOptimizer, ChannelObserver, CheckpointError, CheckpointRetention, CheckpointStore, Driver,
    EngineError, GenerationReport, HistoryObserver, LogObserver, NullObserver, Observer, Optimizer,
    OptimizerSpec, OptimizerState, ProblemSpec, RunCheckpoint, RunSpec, SpecError, StoppingRule,
    StoppingSpec, StoredCheckpoint,
};
pub use pathway_moo::{
    Archipelago, ArchipelagoConfig, EvalBackend, Executor, Individual, MigrationTopology, Moead,
    MoeadConfig, MultiObjectiveProblem, Nsga2, Nsga2Config, Pmo2,
};
pub use pathway_photosynthesis::{
    CarbonDioxideEra, EnzymeKind, EnzymePartition, Scenario, TriosePhosphateExport, UptakeModel,
};
