//! Convenience re-exports for downstream users.
//!
//! ```
//! use pathway_core::prelude::*;
//!
//! let problem = LeafRedesignProblem::new(Scenario::present_low_export());
//! assert_eq!(problem.num_variables(), 23);
//! ```

pub use crate::{
    GeobacterFluxProblem, GeobacterOutcome, GeobacterSolution, GeobacterStudy, LeafDesign,
    LeafDesignOutcome, LeafDesignStudy, LeafRedesignProblem, SelectedLeafDesigns, Study,
    StudyOutcome,
};

pub use pathway_fba::geobacter::GeobacterModel;
pub use pathway_fba::{FluxBalanceAnalysis, MetabolicModel};
pub use pathway_moo::engine::{
    Driver, EngineError, GenerationReport, HistoryObserver, LogObserver, NullObserver, Observer,
    Optimizer, OptimizerState, RunCheckpoint, StoppingRule,
};
pub use pathway_moo::{
    Archipelago, ArchipelagoConfig, EvalBackend, Individual, MigrationTopology, Moead, MoeadConfig,
    MultiObjectiveProblem, Nsga2, Nsga2Config, Pmo2,
};
pub use pathway_photosynthesis::{
    CarbonDioxideEra, EnzymeKind, EnzymePartition, Scenario, TriosePhosphateExport, UptakeModel,
};
