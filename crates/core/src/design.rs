use pathway_fba::geobacter::GeobacterModel;
use pathway_moo::engine::StoppingRule;
use pathway_moo::robustness::{global_yield, RobustnessOptions};
use pathway_moo::{mining, ArchipelagoConfig, EvalBackend, Individual};
use pathway_photosynthesis::{EnzymePartition, Scenario};

use crate::{GeobacterFluxProblem, GeobacterSolution, LeafRedesignProblem, Study};

/// A re-engineered leaf design: enzyme partition plus its evaluated
/// objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafDesign {
    /// Enzyme partition (catalytic capacities of the 23 enzymes).
    pub partition: EnzymePartition,
    /// Net CO₂ uptake in µmol m⁻² s⁻¹.
    pub uptake: f64,
    /// Total protein nitrogen in mg/l.
    pub nitrogen: f64,
}

/// The four automatically selected designs of the paper's Table 2, each with
/// its robustness yield.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedLeafDesigns {
    /// The design closest to the ideal point, with its yield in percent.
    pub closest_to_ideal: (LeafDesign, f64),
    /// The design with the maximum CO₂ uptake, with its yield in percent.
    pub max_uptake: (LeafDesign, f64),
    /// The design with the minimum nitrogen, with its yield in percent.
    pub min_nitrogen: (LeafDesign, f64),
    /// The screened design with the maximum yield, with its yield in percent.
    pub max_yield: (LeafDesign, f64),
}

/// Result of a leaf-redesign study.
///
/// Build one from any engine-produced front with
/// [`LeafDesignOutcome::from_front`], or let the [`LeafDesignStudy`]
/// wrapper produce it.
#[derive(Debug, Clone)]
pub struct LeafDesignOutcome {
    /// The scenario that was optimized.
    pub scenario: Scenario,
    /// Pareto-optimal leaf designs found by PMO2.
    pub front: Vec<LeafDesign>,
    /// Total number of candidate evaluations spent (population × generations ×
    /// islands), for the paper's "1.83% of the partitions explored" style
    /// statistics.
    pub evaluations: usize,
}

impl LeafDesignOutcome {
    /// Decodes an engine-produced front (e.g. from
    /// [`Study::run`] or a `Driver` over the
    /// [`LeafRedesignProblem`]) into leaf designs: objective 0 is the
    /// negated CO₂ uptake, objective 1 the protein nitrogen.
    pub fn from_front(scenario: Scenario, front: Vec<Individual>, evaluations: usize) -> Self {
        let designs = front
            .into_iter()
            .map(|individual| LeafDesign {
                uptake: -individual.objectives[0],
                nitrogen: individual.objectives[1],
                partition: EnzymePartition::new(individual.variables),
            })
            .collect();
        LeafDesignOutcome {
            scenario,
            front: designs,
            evaluations,
        }
    }

    /// The design with the highest CO₂ uptake.
    ///
    /// # Panics
    ///
    /// Panics if the front is empty.
    pub fn max_uptake(&self) -> &LeafDesign {
        self.front
            .iter()
            .max_by(|a, b| a.uptake.partial_cmp(&b.uptake).expect("uptake is finite"))
            .expect("the front is non-empty")
    }

    /// The design with the lowest nitrogen investment.
    ///
    /// # Panics
    ///
    /// Panics if the front is empty.
    pub fn min_nitrogen(&self) -> &LeafDesign {
        self.front
            .iter()
            .min_by(|a, b| {
                a.nitrogen
                    .partial_cmp(&b.nitrogen)
                    .expect("nitrogen is finite")
            })
            .expect("the front is non-empty")
    }

    /// The design closest to the ideal point (normalized objectives).
    ///
    /// # Panics
    ///
    /// Panics if the front is empty.
    pub fn closest_to_ideal(&self) -> &LeafDesign {
        let objectives: Vec<Vec<f64>> = self
            .front
            .iter()
            .map(|d| vec![-d.uptake, d.nitrogen])
            .collect();
        let index = mining::closest_to_ideal(&objectives).expect("the front is non-empty");
        &self.front[index]
    }

    /// The paper's candidate **B**: the design that preserves (at least)
    /// `fraction` of the natural uptake with the smallest nitrogen investment.
    /// Returns `None` if no front member reaches that uptake.
    pub fn candidate_b(&self, fraction: f64) -> Option<&LeafDesign> {
        let target = Scenario::NATURAL_UPTAKE * fraction;
        self.front
            .iter()
            .filter(|d| d.uptake >= target)
            .min_by(|a, b| {
                a.nitrogen
                    .partial_cmp(&b.nitrogen)
                    .expect("nitrogen is finite")
            })
    }

    /// `count` designs spread equally along the front (by uptake), the set the
    /// paper scores for the Figure 3 Pareto surface.
    pub fn spread(&self, count: usize) -> Vec<&LeafDesign> {
        let objectives: Vec<Vec<f64>> = self
            .front
            .iter()
            .map(|d| vec![-d.uptake, d.nitrogen])
            .collect();
        mining::equally_spaced(&objectives, count)
            .into_iter()
            .map(|i| &self.front[i])
            .collect()
    }

    /// Robustness yield Γ (in percent) of one design: the fraction of
    /// Monte-Carlo perturbations (±10% per enzyme) whose uptake stays within
    /// 5% of the design's nominal uptake.
    pub fn robustness_percent(&self, design: &LeafDesign, trials: usize) -> f64 {
        let problem = LeafRedesignProblem::new(self.scenario);
        let options = RobustnessOptions {
            global_trials: trials,
            ..Default::default()
        };
        let report = global_yield(
            design.partition.capacities(),
            |x| problem.uptake(x),
            &options,
        );
        report.yield_percent()
    }

    /// Builds the paper's Table 2: the three automatically selected designs
    /// plus the most robust design among `screen_count` spread candidates.
    ///
    /// # Panics
    ///
    /// Panics if the front is empty.
    pub fn selected_designs(&self, trials: usize, screen_count: usize) -> SelectedLeafDesigns {
        let closest = self.closest_to_ideal().clone();
        let max_uptake = self.max_uptake().clone();
        let min_nitrogen = self.min_nitrogen().clone();
        let closest_yield = self.robustness_percent(&closest, trials);
        let max_uptake_yield = self.robustness_percent(&max_uptake, trials);
        let min_nitrogen_yield = self.robustness_percent(&min_nitrogen, trials);

        let mut best_yield = (closest.clone(), closest_yield);
        for design in self.spread(screen_count) {
            let yield_percent = self.robustness_percent(design, trials);
            if yield_percent > best_yield.1 {
                best_yield = (design.clone(), yield_percent);
            }
        }
        SelectedLeafDesigns {
            closest_to_ideal: (closest, closest_yield),
            max_uptake: (max_uptake, max_uptake_yield),
            min_nitrogen: (min_nitrogen, min_nitrogen_yield),
            max_yield: best_yield,
        }
    }
}

/// An end-to-end leaf redesign study: PMO2 over the [`LeafRedesignProblem`]
/// followed by front mining and robustness screening.
///
/// This is a thin compatibility wrapper over the generic [`Study`] facade —
/// prefer `Study::new(LeafRedesignProblem::new(scenario))` for new code,
/// which additionally exposes observers, extra stopping rules and
/// checkpoint/resume through [`Study::driver`]. The wrapper adds only the
/// scenario bookkeeping and the robustness-trial budget that
/// [`LeafDesignOutcome`] screening uses.
#[derive(Debug, Clone)]
pub struct LeafDesignStudy {
    scenario: Scenario,
    robustness_trials: usize,
    study: Study<LeafRedesignProblem>,
}

impl LeafDesignStudy {
    /// Creates a study with the paper's PMO2 configuration (2 islands,
    /// migration every 200 generations with probability 0.5) and a moderate
    /// default budget.
    pub fn new(scenario: Scenario) -> Self {
        LeafDesignStudy {
            scenario,
            robustness_trials: 5_000,
            study: Study::new(LeafRedesignProblem::new(scenario)),
        }
    }

    /// Overrides the per-island population size and total generation count.
    #[must_use]
    pub fn with_budget(mut self, population: usize, generations: usize) -> Self {
        self.study = self.study.with_budget(population, generations);
        self
    }

    /// Overrides the number of islands.
    #[must_use]
    pub fn with_islands(mut self, islands: usize) -> Self {
        self.study = self.study.with_islands(islands);
        self
    }

    /// Overrides the migration interval and probability.
    #[must_use]
    pub fn with_migration(mut self, interval: usize, probability: f64) -> Self {
        self.study = self.study.with_migration(interval, probability);
        self
    }

    /// Overrides the Monte-Carlo trial count used for robustness screening.
    #[must_use]
    pub fn with_robustness_trials(mut self, trials: usize) -> Self {
        self.robustness_trials = trials;
        self
    }

    /// Overrides the evaluation backend each island uses for its offspring
    /// batches (each candidate evaluation runs the leaf ODE model to steady
    /// state, so this is where the study's wall-clock goes). Results are
    /// bit-identical across backends for a fixed seed.
    #[must_use]
    pub fn with_backend(mut self, backend: EvalBackend) -> Self {
        self.study = self.study.with_backend(backend);
        self
    }

    /// Adds a stopping rule beside the generation budget (e.g. hypervolume
    /// stagnation for early convergence exits).
    #[must_use]
    pub fn with_stopping(mut self, rule: StoppingRule) -> Self {
        self.study = self.study.with_stopping(rule);
        self
    }

    /// The robustness trial budget configured for this study.
    pub fn robustness_trials(&self) -> usize {
        self.robustness_trials
    }

    /// The scenario under study.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The underlying generic study, for driver-level access (observers,
    /// checkpoints).
    pub fn study(&self) -> &Study<LeafRedesignProblem> {
        &self.study
    }

    /// The archipelago configuration this study will run.
    pub fn archipelago_config(&self) -> ArchipelagoConfig {
        self.study.archipelago_config()
    }

    /// Runs the study with a deterministic seed.
    pub fn run(&self, seed: u64) -> LeafDesignOutcome {
        let outcome = self.study.run(seed);
        LeafDesignOutcome::from_front(self.scenario, outcome.front, outcome.evaluations)
    }
}

/// Result of a Geobacter flux study.
#[derive(Debug, Clone)]
pub struct GeobacterOutcome {
    /// Pareto-optimal flux designs (electron production, biomass production,
    /// violation).
    pub front: Vec<GeobacterSolution>,
    /// Steady-state violation of a random flux vector of the same dimension,
    /// the paper's "initial guess" reference (order 10⁶ at paper scale).
    pub initial_violation: f64,
    /// Smallest steady-state violation on the reported front.
    pub best_violation: f64,
}

impl GeobacterOutcome {
    /// The `count` best trade-off points ordered by decreasing biomass, i.e.
    /// the paper's A–E labels in Figure 4.
    pub fn labelled_points(&self, count: usize) -> Vec<GeobacterSolution> {
        let mut sorted = self.front.clone();
        sorted.sort_by(|a, b| {
            b.biomass_production
                .partial_cmp(&a.biomass_production)
                .expect("fluxes are finite")
        });
        sorted.into_iter().take(count).collect()
    }
}

/// An end-to-end Geobacter study: PMO2 over the [`GeobacterFluxProblem`].
///
/// This is a thin compatibility wrapper over the generic [`Study`] facade
/// (the model — and therefore the problem — depends on the run seed, so the
/// wrapper builds a fresh `Study` per run). Prefer constructing a
/// [`GeobacterFluxProblem`] and a `Study` directly for new code.
#[derive(Debug, Clone)]
pub struct GeobacterStudy {
    reactions: usize,
    population: usize,
    generations: usize,
    islands: usize,
    backend: EvalBackend,
}

impl GeobacterStudy {
    /// Creates a study at the paper's scale (608 reactions).
    pub fn new() -> Self {
        GeobacterStudy {
            reactions: 608,
            population: 60,
            generations: 200,
            islands: 2,
            backend: EvalBackend::Serial,
        }
    }

    /// Overrides the synthetic model size (useful for tests and CI budgets).
    #[must_use]
    pub fn with_reactions(mut self, reactions: usize) -> Self {
        self.reactions = reactions;
        self
    }

    /// Overrides the optimization budget.
    #[must_use]
    pub fn with_budget(mut self, population: usize, generations: usize) -> Self {
        self.population = population;
        self.generations = generations;
        self
    }

    /// Overrides the evaluation backend each island uses for its offspring
    /// batches (each candidate costs a sparse steady-state residual at model
    /// scale). Results are bit-identical across backends for a fixed seed.
    #[must_use]
    pub fn with_backend(mut self, backend: EvalBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Runs the study with a deterministic seed.
    ///
    /// # Errors
    ///
    /// Propagates FBA failures while the problem is being constructed.
    pub fn run(&self, seed: u64) -> Result<GeobacterOutcome, pathway_fba::FbaError> {
        let model = GeobacterModel::builder()
            .reactions(self.reactions)
            .seed(seed ^ 0x6E0B)
            .build();
        let problem = GeobacterFluxProblem::new(&model)?;

        // The paper's "initial guess" violation reference: a random vector in
        // the model's raw flux bounds, far from steady state.
        let mut perturbation = pathway_fba::FluxPerturbation::new(0.1, 10.0, seed);
        let random_guess = perturbation.random_vector(problem.model());
        let initial_violation =
            pathway_fba::steady_state_violation(problem.model(), &random_guess)?;

        let study = Study::new(problem)
            .with_islands(self.islands)
            .with_budget(self.population, self.generations)
            .with_migration((self.generations / 2).max(1), 0.5)
            .with_backend(self.backend);
        let outcome = study.run(seed);
        let solutions: Vec<GeobacterSolution> = outcome
            .front
            .iter()
            .map(|individual| study.problem().decode(&individual.variables))
            .collect();
        let best_violation = solutions
            .iter()
            .map(|s| s.violation)
            .fold(f64::INFINITY, f64::min);
        Ok(GeobacterOutcome {
            front: solutions,
            initial_violation,
            best_violation,
        })
    }
}

impl Default for GeobacterStudy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_study() -> LeafDesignStudy {
        LeafDesignStudy::new(Scenario::present_low_export())
            .with_budget(24, 30)
            .with_migration(10, 0.5)
            .with_robustness_trials(150)
    }

    #[test]
    fn study_produces_a_trade_off_front() {
        let outcome = quick_study().run(3);
        assert!(
            outcome.front.len() >= 5,
            "front only had {} designs",
            outcome.front.len()
        );
        let max_uptake = outcome.max_uptake();
        let min_nitrogen = outcome.min_nitrogen();
        assert!(max_uptake.uptake > min_nitrogen.uptake);
        assert!(max_uptake.nitrogen > min_nitrogen.nitrogen);
        assert!(outcome.evaluations > 0);
    }

    #[test]
    fn optimized_designs_beat_the_natural_leaf() {
        let outcome = LeafDesignStudy::new(Scenario::present_low_export())
            .with_budget(30, 80)
            .with_migration(20, 0.5)
            .run(11);
        // The paper reports uptake raised from 15.5 to well above 30 at higher
        // nitrogen; even a small budget should clear the natural uptake.
        assert!(outcome.max_uptake().uptake > Scenario::NATURAL_UPTAKE);
        // And some design should save nitrogen versus the natural leaf.
        assert!(outcome.min_nitrogen().nitrogen < EnzymePartition::NATURAL_NITROGEN);
    }

    #[test]
    fn candidate_b_preserves_uptake_with_less_nitrogen() {
        let outcome = LeafDesignStudy::new(Scenario::present_low_export())
            .with_budget(40, 120)
            .with_migration(30, 0.5)
            .run(17);
        let candidate = outcome
            .candidate_b(0.95)
            .expect("some design preserves at least 95% of the natural uptake");
        assert!(candidate.uptake >= Scenario::NATURAL_UPTAKE * 0.95);
        assert!(candidate.nitrogen < EnzymePartition::NATURAL_NITROGEN);
    }

    #[test]
    fn selected_designs_cover_the_papers_table_2_rows() {
        let outcome = quick_study().run(5);
        let selected = outcome.selected_designs(100, 8);
        assert!(selected.max_uptake.0.uptake >= selected.min_nitrogen.0.uptake);
        assert!(selected.min_nitrogen.0.nitrogen <= selected.closest_to_ideal.0.nitrogen);
        for (_, yield_percent) in [
            &selected.closest_to_ideal,
            &selected.max_uptake,
            &selected.min_nitrogen,
            &selected.max_yield,
        ] {
            assert!((0.0..=100.0).contains(yield_percent));
        }
        assert!(selected.max_yield.1 >= selected.closest_to_ideal.1);
    }

    #[test]
    fn threaded_backend_reproduces_the_serial_study_bit_for_bit() {
        let serial = quick_study().run(3);
        let threaded = quick_study().with_backend(EvalBackend::Threads(2)).run(3);
        assert_eq!(serial.front, threaded.front);
        assert_eq!(serial.evaluations, threaded.evaluations);
    }

    #[test]
    fn spread_returns_the_requested_number_of_designs() {
        let outcome = quick_study().run(9);
        let spread = outcome.spread(5);
        assert!(spread.len() <= 5);
        assert!(!spread.is_empty());
    }

    #[test]
    fn geobacter_study_finds_near_steady_state_trade_offs() {
        let outcome = GeobacterStudy::new()
            .with_reactions(48)
            .with_budget(30, 30)
            .run(2)
            .expect("small geobacter study must run");
        assert!(!outcome.front.is_empty());
        // The evolved solutions violate the steady-state constraint far less
        // than a random initial guess (the paper reports a ~26x reduction).
        assert!(outcome.best_violation < outcome.initial_violation / 5.0);
        let labelled = outcome.labelled_points(5);
        assert!(!labelled.is_empty());
        assert!(labelled[0].biomass_production >= labelled.last().unwrap().biomass_production);
    }
}
