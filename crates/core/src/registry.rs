//! The problem registry: from declarative [`ProblemSpec`]s to live problems.
//!
//! A [`pathway_moo::engine::RunSpec`] describes its problem as plain data (a
//! name plus string parameters); this module resolves that description into
//! an [`AnyProblem`] — one concrete type covering every problem the
//! workspace ships, so spec-driven code (the `pathway` CLI, the
//! [`crate::Study`] factory) never needs to be generic over the problem.
//!
//! [`PROBLEM_CATALOG`] is the authoritative list of registry names and their
//! parameters; `pathway list-problems` prints it.
//!
//! # Example
//!
//! ```
//! use pathway_core::{spec_driver, AnyProblem};
//! use pathway_moo::engine::{ProblemSpec, RunSpec};
//!
//! let spec = RunSpec {
//!     problem: ProblemSpec::named("schaffer"),
//!     stopping: pathway_moo::engine::StoppingSpec { max_generations: 5, ..Default::default() },
//!     ..Default::default()
//! };
//! let problem = AnyProblem::from_spec(&spec.problem).unwrap();
//! let front = spec_driver(&spec, &problem).run();
//! assert!(!front.is_empty());
//! ```

use std::sync::Arc;

use pathway_fba::geobacter::GeobacterModel;
use pathway_moo::engine::{
    AnyOptimizer, Driver, EngineError, LogObserver, MetricsRegistry, ProblemSpec, RunCheckpoint,
    RunSpec, SpecError,
};
use pathway_moo::exec::Executor;
use pathway_moo::problems::{BinhKorn, Dtlz2, Schaffer, Zdt1, Zdt2};
use pathway_moo::MultiObjectiveProblem;
use pathway_photosynthesis::{CarbonDioxideEra, Scenario, TriosePhosphateExport};

use crate::{GeobacterFluxProblem, LeafRedesignProblem};

/// One registry entry: a problem name, what it is, and its parameters.
#[derive(Debug, Clone, Copy)]
pub struct ProblemInfo {
    /// Registry name used in `[problem] name = ...`.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// `(parameter, description)` pairs accepted in the `[problem]` section.
    pub params: &'static [(&'static str, &'static str)],
}

/// Every problem the registry can build, with its accepted parameters.
pub const PROBLEM_CATALOG: &[ProblemInfo] = &[
    ProblemInfo {
        name: "leaf-design",
        summary: "C3 leaf redesign: maximize CO2 uptake, minimize protein nitrogen (23 enzymes)",
        params: &[
            ("era", "CO2 era: past | present | future (default present)"),
            ("export", "triose-phosphate export: low | high (default low)"),
            ("lower_factor", "search box lower bound as a multiple of natural capacity (default 0.02)"),
            ("upper_factor", "search box upper bound as a multiple of natural capacity (default 4)"),
        ],
    },
    ProblemInfo {
        name: "geobacter",
        summary: "Geobacter sulfurreducens flux redesign: maximize electron + biomass production near steady state",
        params: &[
            ("reactions", "model size in reactions (default 64; the paper uses 608)"),
            ("model_seed", "seed of the synthetic model generator (default 28171)"),
            ("radius", "per-flux exploration radius around the reference distribution (default 5)"),
        ],
    },
    ProblemInfo {
        name: "schaffer",
        summary: "Schaffer's bi-objective benchmark, Pareto set x in [0, 2]",
        params: &[],
    },
    ProblemInfo {
        name: "zdt1",
        summary: "ZDT1 benchmark with a convex front",
        params: &[("variables", "decision variables (default 30)")],
    },
    ProblemInfo {
        name: "zdt2",
        summary: "ZDT2 benchmark with a concave front",
        params: &[("variables", "decision variables (default 30)")],
    },
    ProblemInfo {
        name: "binh-korn",
        summary: "Binh & Korn's constrained benchmark (exercises constrained domination)",
        params: &[],
    },
    ProblemInfo {
        name: "dtlz2",
        summary: "DTLZ2 tri-objective benchmark with a spherical front",
        params: &[("variables", "decision variables (default 7)")],
    },
];

/// Any problem the workspace ships, behind one concrete
/// [`MultiObjectiveProblem`] type.
///
/// Built from a [`ProblemSpec`] by [`AnyProblem::from_spec`]; every method
/// delegates to the wrapped problem, so optimizers and drivers treat an
/// `AnyProblem` exactly like the problem it wraps.
#[derive(Debug, Clone)]
pub enum AnyProblem {
    /// The paper's C3 leaf redesign problem.
    LeafDesign(LeafRedesignProblem),
    /// The paper's Geobacter flux problem (boxed: it carries the whole
    /// metabolic model).
    Geobacter(Box<GeobacterFluxProblem>),
    /// Schaffer's benchmark.
    Schaffer(Schaffer),
    /// The ZDT1 benchmark.
    Zdt1(Zdt1),
    /// The ZDT2 benchmark.
    Zdt2(Zdt2),
    /// Binh & Korn's constrained benchmark.
    BinhKorn(BinhKorn),
    /// The DTLZ2 tri-objective benchmark.
    Dtlz2(Dtlz2),
}

impl AnyProblem {
    /// Resolves a problem description against the registry.
    ///
    /// # Errors
    ///
    /// [`SpecError::Field`] for unknown names, unknown parameters, unusable
    /// parameter values, and model-construction failures.
    pub fn from_spec(spec: &ProblemSpec) -> Result<Self, SpecError> {
        let info = PROBLEM_CATALOG
            .iter()
            .find(|info| info.name == spec.name)
            .ok_or_else(|| {
                let known: Vec<&str> = PROBLEM_CATALOG.iter().map(|info| info.name).collect();
                SpecError::field(
                    "problem.name",
                    format!(
                        "unknown problem '{}' (known problems: {})",
                        spec.name,
                        known.join(", ")
                    ),
                )
            })?;
        for key in spec.params.keys() {
            if !info.params.iter().any(|(name, _)| name == key) {
                return Err(SpecError::field(
                    format!("problem.{key}"),
                    format!("problem '{}' accepts no parameter '{key}'", spec.name),
                ));
            }
        }
        match spec.name.as_str() {
            "leaf-design" => {
                let era = match spec.params.get("era").map(String::as_str) {
                    None | Some("present") => CarbonDioxideEra::Present,
                    Some("past") => CarbonDioxideEra::Past,
                    Some("future") => CarbonDioxideEra::Future,
                    Some(other) => {
                        return Err(SpecError::field(
                            "problem.era",
                            format!("unknown era '{other}' (expected past, present or future)"),
                        ))
                    }
                };
                let export = match spec.params.get("export").map(String::as_str) {
                    None | Some("low") => TriosePhosphateExport::Low,
                    Some("high") => TriosePhosphateExport::High,
                    Some(other) => {
                        return Err(SpecError::field(
                            "problem.export",
                            format!("unknown export regime '{other}' (expected low or high)"),
                        ))
                    }
                };
                let mut problem = LeafRedesignProblem::new(Scenario::new(era, export));
                let lower_param = spec.parsed_param::<f64>("lower_factor")?;
                let upper_param = spec.parsed_param::<f64>("upper_factor")?;
                if lower_param.is_some() || upper_param.is_some() {
                    let lower = lower_param.unwrap_or(0.02);
                    let upper = upper_param.unwrap_or(4.0);
                    if !(lower.is_finite() && upper.is_finite() && 0.0 < lower && lower < upper) {
                        // Blame the key(s) the spec actually set.
                        let field = match (lower_param, upper_param) {
                            (Some(_), None) => "problem.lower_factor",
                            (None, Some(_)) => "problem.upper_factor",
                            _ => "problem.lower_factor/upper_factor",
                        };
                        return Err(SpecError::field(
                            field,
                            format!(
                                "bounds factors must satisfy 0 < lower < upper \
                                 (got lower {lower}, upper {upper})"
                            ),
                        ));
                    }
                    problem = problem.with_bounds(lower, upper);
                }
                Ok(AnyProblem::LeafDesign(problem))
            }
            "geobacter" => {
                let reactions = spec.parsed_param::<usize>("reactions")?.unwrap_or(64);
                let model_seed = spec.parsed_param::<u64>("model_seed")?.unwrap_or(0x6E0B);
                let model = GeobacterModel::builder()
                    .reactions(reactions)
                    .seed(model_seed)
                    .build();
                let problem = match spec.parsed_param::<f64>("radius")? {
                    None => GeobacterFluxProblem::new(&model),
                    Some(radius) => {
                        let tolerance = 0.035 * radius * model.model().num_reactions() as f64;
                        GeobacterFluxProblem::with_exploration(&model, radius, tolerance)
                    }
                };
                problem
                    .map(Box::new)
                    .map(AnyProblem::Geobacter)
                    .map_err(|err| {
                        SpecError::field(
                            "problem",
                            format!("geobacter model construction failed: {err}"),
                        )
                    })
            }
            "schaffer" => Ok(AnyProblem::Schaffer(Schaffer)),
            "zdt1" => {
                let variables = spec.parsed_param("variables")?.unwrap_or(30);
                Ok(AnyProblem::Zdt1(Zdt1 { variables }))
            }
            "zdt2" => {
                let variables = spec.parsed_param("variables")?.unwrap_or(30);
                Ok(AnyProblem::Zdt2(Zdt2 { variables }))
            }
            "binh-korn" => Ok(AnyProblem::BinhKorn(BinhKorn)),
            "dtlz2" => {
                let variables = spec.parsed_param("variables")?.unwrap_or(7);
                Ok(AnyProblem::Dtlz2(Dtlz2 { variables }))
            }
            _ => unreachable!("catalog lookup succeeded above"),
        }
    }

    /// Dumps the problem's cumulative oracle counters (if it keeps any)
    /// into `registry`: the Geobacter problem reports its
    /// `oracle.fba.*` tallies; the benchmark problems have no expensive
    /// oracle and record nothing. Call once when an invocation finishes.
    pub fn record_oracle_metrics(&self, registry: &MetricsRegistry) {
        if let AnyProblem::Geobacter(problem) = self {
            problem.record_oracle_metrics(registry);
        }
    }

    fn inner(&self) -> &dyn MultiObjectiveProblem {
        match self {
            AnyProblem::LeafDesign(p) => p,
            AnyProblem::Geobacter(p) => p.as_ref(),
            AnyProblem::Schaffer(p) => p,
            AnyProblem::Zdt1(p) => p,
            AnyProblem::Zdt2(p) => p,
            AnyProblem::BinhKorn(p) => p,
            AnyProblem::Dtlz2(p) => p,
        }
    }
}

impl MultiObjectiveProblem for AnyProblem {
    fn num_variables(&self) -> usize {
        self.inner().num_variables()
    }
    fn num_objectives(&self) -> usize {
        self.inner().num_objectives()
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        self.inner().bounds()
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.inner().evaluate(x)
    }
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<(Vec<f64>, f64)> {
        self.inner().evaluate_batch(xs)
    }
    fn prepare_batch(&self, xs: &[Vec<f64>]) {
        self.inner().prepare_batch(xs);
    }
    fn constraint_violation(&self, x: &[f64]) -> f64 {
        self.inner().constraint_violation(x)
    }
    fn name(&self) -> &str {
        self.inner().name()
    }
}

/// Cross-checks the spec fields whose validity depends on the *resolved*
/// problem — which `RunSpec::validate` alone cannot see. Currently: a
/// configured reference point must have exactly one component per
/// objective, otherwise hypervolume computation would panic mid-run.
///
/// # Errors
///
/// [`SpecError::Field`] naming the offending field.
pub fn validate_spec_against_problem(
    spec: &RunSpec,
    problem: &AnyProblem,
) -> Result<(), SpecError> {
    if let Some(reference) = &spec.reference_point {
        let objectives = problem.num_objectives();
        if reference.len() != objectives {
            return Err(SpecError::field(
                "run.reference_point",
                format!(
                    "has {} components but problem '{}' has {objectives} objectives",
                    reference.len(),
                    problem.name()
                ),
            ));
        }
    }
    Ok(())
}

/// Builds a ready-to-run [`Driver`] for a spec: fresh optimizer, the spec's
/// stopping rule and reference point, and a [`LogObserver`] when the spec
/// asks for one. Attach further observers on the returned driver.
///
/// Call [`validate_spec_against_problem`] first when the spec comes from
/// untrusted input — a reference point of the wrong dimension panics once
/// telemetry computes a hypervolume.
pub fn spec_driver<'p>(
    spec: &RunSpec,
    problem: &'p AnyProblem,
) -> Driver<&'p AnyProblem, AnyOptimizer> {
    assemble_driver(spec, problem, spec.build_optimizer())
}

/// Like [`spec_driver`], with an explicit evaluation [`Executor`] installed
/// on the optimizer before the driver takes it over.
///
/// This is how a launcher runs a whole invocation on **one** persistent
/// worker pool: build the executor once (the `pathway` CLI derives it from
/// `--threads`, falling back to the spec's backend) and hand it to every
/// driver it creates — fresh runs and resumes alike. Executors never change
/// results, only where batches are evaluated.
pub fn spec_driver_with_executor<'p>(
    spec: &RunSpec,
    problem: &'p AnyProblem,
    executor: Arc<Executor>,
) -> Driver<&'p AnyProblem, AnyOptimizer> {
    let mut optimizer = spec.build_optimizer();
    optimizer.set_executor(executor);
    assemble_driver(spec, problem, optimizer)
}

/// Like [`spec_driver_with_executor`], but the driver takes *ownership* of
/// the problem, so the returned value is a fully self-contained job: no
/// borrow ties it to the caller's stack frame. This is the factory used by
/// long-lived services (`pathway serve`) that park many drivers in a job
/// table and advance each one step per scheduling turn.
pub fn owned_spec_driver(
    spec: &RunSpec,
    problem: AnyProblem,
    executor: Arc<Executor>,
) -> Driver<AnyProblem, AnyOptimizer> {
    let mut optimizer = spec.build_optimizer();
    optimizer.set_executor(executor);
    assemble_driver(spec, problem, optimizer)
}

fn assemble_driver<P: MultiObjectiveProblem>(
    spec: &RunSpec,
    problem: P,
    optimizer: AnyOptimizer,
) -> Driver<P, AnyOptimizer> {
    let mut driver = Driver::new(optimizer, problem).with_stopping(spec.stopping_rule());
    if let Some(reference) = &spec.reference_point {
        driver = driver.with_reference_point(reference.clone());
    }
    if let Some(every) = spec.log_every {
        driver = driver.with_observer(LogObserver::new(every));
    }
    driver
}

/// Rebuilds a [`Driver`] continuing `checkpoint` under `spec`: the resumed
/// run is bit-identical to the uninterrupted one (the engine's
/// checkpoint/resume guarantee), with the spec's stopping rule and observer
/// configuration re-attached.
///
/// Callers are responsible for having verified that the checkpoint belongs
/// to `spec` (see
/// [`StoredCheckpoint::ensure_matches`](pathway_moo::engine::StoredCheckpoint::ensure_matches));
/// this function only checks that the optimizer state fits the spec's
/// optimizer configuration.
///
/// # Errors
///
/// Propagates [`EngineError`] when the checkpointed state does not fit the
/// spec's optimizer.
pub fn resume_spec_driver<'p>(
    spec: &RunSpec,
    problem: &'p AnyProblem,
    checkpoint: RunCheckpoint,
) -> Result<Driver<&'p AnyProblem, AnyOptimizer>, EngineError> {
    resume_driver_inner(spec, problem, checkpoint, None)
}

/// Like [`resume_spec_driver`], with an explicit evaluation [`Executor`]
/// installed on the optimizer before the checkpoint is restored into it.
/// Executors are configuration, not run state: resuming under a different
/// executor (or worker count) than the checkpointing run preserves
/// bit-identical results, only the wall-clock changes.
///
/// # Errors
///
/// Same as [`resume_spec_driver`].
pub fn resume_spec_driver_with_executor<'p>(
    spec: &RunSpec,
    problem: &'p AnyProblem,
    checkpoint: RunCheckpoint,
    executor: Arc<Executor>,
) -> Result<Driver<&'p AnyProblem, AnyOptimizer>, EngineError> {
    resume_driver_inner(spec, problem, checkpoint, Some(executor))
}

/// Like [`resume_spec_driver_with_executor`], but the rebuilt driver takes
/// *ownership* of the problem — the resume-side counterpart of
/// [`owned_spec_driver`], used by services restoring parked jobs after a
/// restart.
///
/// # Errors
///
/// Same as [`resume_spec_driver`].
pub fn owned_resume_spec_driver(
    spec: &RunSpec,
    problem: AnyProblem,
    checkpoint: RunCheckpoint,
    executor: Arc<Executor>,
) -> Result<Driver<AnyProblem, AnyOptimizer>, EngineError> {
    resume_driver_inner(spec, problem, checkpoint, Some(executor))
}

fn resume_driver_inner<P: MultiObjectiveProblem>(
    spec: &RunSpec,
    problem: P,
    checkpoint: RunCheckpoint,
    executor: Option<Arc<Executor>>,
) -> Result<Driver<P, AnyOptimizer>, EngineError> {
    let missing_reference = checkpoint.reference_point.is_none();
    let mut optimizer = spec.build_optimizer();
    if let Some(executor) = executor {
        optimizer.set_executor(executor);
    }
    let mut driver =
        Driver::resume(optimizer, problem, checkpoint)?.with_stopping(spec.stopping_rule());
    if missing_reference {
        if let Some(reference) = &spec.reference_point {
            driver = driver.with_reference_point(reference.clone());
        }
    }
    if let Some(every) = spec.log_every {
        driver = driver.with_observer(LogObserver::new(every));
    }
    Ok(driver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathway_moo::engine::{Nsga2Spec, OptimizerSpec, StoppingSpec};

    fn schaffer_spec(seed: u64, generations: usize) -> RunSpec {
        RunSpec {
            problem: ProblemSpec::named("schaffer"),
            optimizer: OptimizerSpec::Nsga2(Nsga2Spec {
                population: 16,
                ..Default::default()
            }),
            seed,
            stopping: StoppingSpec {
                max_generations: generations,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn catalog_resolves_every_entry() {
        for info in PROBLEM_CATALOG {
            // geobacter at default size solves two LPs; shrink it.
            let spec = if info.name == "geobacter" {
                ProblemSpec::named(info.name).with_param("reactions", "24")
            } else {
                ProblemSpec::named(info.name)
            };
            let problem = AnyProblem::from_spec(&spec)
                .unwrap_or_else(|err| panic!("catalog entry '{}' failed: {err}", info.name));
            assert!(problem.num_variables() > 0, "{}", info.name);
            assert!(problem.num_objectives() >= 2, "{}", info.name);
            assert_eq!(problem.bounds().len(), problem.num_variables());
        }
    }

    #[test]
    fn unknown_names_and_params_are_field_errors() {
        let err = AnyProblem::from_spec(&ProblemSpec::named("nope")).unwrap_err();
        assert!(err.to_string().contains("known problems"), "{err}");
        let err = AnyProblem::from_spec(&ProblemSpec::named("zdt1").with_param("dimension", "4"))
            .unwrap_err();
        assert!(err.to_string().contains("dimension"), "{err}");
        let err =
            AnyProblem::from_spec(&ProblemSpec::named("leaf-design").with_param("era", "jurassic"))
                .unwrap_err();
        assert!(err.to_string().contains("jurassic"), "{err}");
    }

    #[test]
    fn problem_params_shape_the_problem() {
        let zdt1 = AnyProblem::from_spec(&ProblemSpec::named("zdt1").with_param("variables", "9"))
            .unwrap();
        assert_eq!(zdt1.num_variables(), 9);
        let leaf = AnyProblem::from_spec(&ProblemSpec::named("leaf-design")).unwrap();
        assert_eq!(leaf.num_variables(), 23);
    }

    #[test]
    fn spec_driver_runs_and_resumes_bit_identically() {
        let spec = schaffer_spec(5, 12);
        let problem = AnyProblem::from_spec(&spec.problem).unwrap();
        let unsplit = spec_driver(&spec, &problem).run();

        let mut first = spec_driver(&spec, &problem);
        for _ in 0..4 {
            first.step();
        }
        let resumed = resume_spec_driver(&spec, &problem, first.checkpoint())
            .expect("same spec")
            .run();
        assert_eq!(unsplit, resumed);
    }

    #[test]
    fn reference_point_dimension_is_checked_against_the_problem() {
        let mut spec = schaffer_spec(1, 5);
        spec.reference_point = Some(vec![30.0, 30.0, 30.0]);
        let problem = AnyProblem::from_spec(&spec.problem).unwrap();
        let err = validate_spec_against_problem(&spec, &problem).unwrap_err();
        assert!(err.to_string().contains("reference_point"), "{err}");
        assert!(err.to_string().contains("2 objectives"), "{err}");
        spec.reference_point = Some(vec![30.0, 30.0]);
        validate_spec_against_problem(&spec, &problem).expect("matching dimension");
    }

    #[test]
    fn resume_rejects_a_mismatched_optimizer_shape() {
        let spec = schaffer_spec(5, 12);
        let problem = AnyProblem::from_spec(&spec.problem).unwrap();
        let mut driver = spec_driver(&spec, &problem);
        driver.step();
        let checkpoint = driver.checkpoint();
        let different = RunSpec {
            optimizer: OptimizerSpec::Moead(Default::default()),
            ..schaffer_spec(5, 12)
        };
        assert!(resume_spec_driver(&different, &problem, checkpoint).is_err());
    }
}
