//! Property tests for `pathway_core::jsonlite`.
//!
//! The `pathway serve` wire protocol feeds this parser untrusted socket
//! bytes, so beyond the unit tests in the module itself we check two things
//! over randomized documents: every print/parse cycle is the identity
//! (pretty and compact alike), and the hostile-input hardening — the
//! nesting-depth cap, truncated strings and escapes — fails with explicit
//! errors instead of panics or stack overflows.

use pathway_core::jsonlite::{JsonValue, MAX_DEPTH};
use proptest::prelude::*;

/// SplitMix64 step: the test draws one `u64` seed per case from the shim's
/// strategy and expands it into a whole random document tree.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Characters the generator draws strings from — biased toward everything
/// the escaper has to handle: quotes, backslashes, control characters,
/// multi-byte scalars, and an astral-plane emoji (surrogate-pair territory
/// in `\u` escapes).
const PALETTE: &[char] = &[
    'a', 'z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0000}', '\u{0007}', '\u{001f}', 'é',
    'µ', '\u{2028}', '😀',
];

fn random_string(state: &mut u64) -> String {
    let len = (next(state) % 12) as usize;
    (0..len)
        .map(|_| PALETTE[(next(state) % PALETTE.len() as u64) as usize])
        .collect()
}

/// A finite random number that exercises both `Int` and `Number` payloads.
fn random_number(state: &mut u64) -> JsonValue {
    match next(state) % 3 {
        0 => JsonValue::Int(next(state) as i64),
        1 => JsonValue::Int((next(state) % 100) as i64 - 50),
        _ => {
            // mantissa × 2^exp stays finite for |exp| ≤ 64.
            let mantissa = (next(state) as i64 % (1 << 40)) as f64;
            let exp = (next(state) % 129) as i32 - 64;
            JsonValue::Number(mantissa * (exp as f64).exp2())
        }
    }
}

fn random_value(state: &mut u64, depth: usize) -> JsonValue {
    // Containers get rarer with depth so trees stay small and terminate.
    let kinds = if depth >= 5 { 5 } else { 7 };
    match next(state) % kinds {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(next(state).is_multiple_of(2)),
        2 | 3 => random_number(state),
        4 => JsonValue::String(random_string(state)),
        5 => {
            let len = (next(state) % 4) as usize;
            JsonValue::Array((0..len).map(|_| random_value(state, depth + 1)).collect())
        }
        _ => {
            let len = (next(state) % 4) as usize;
            JsonValue::Object(
                (0..len)
                    .map(|_| (random_string(state), random_value(state, depth + 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #[test]
    fn prop_pretty_print_parse_is_identity(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let value = random_value(&mut state, 0);
        let printed = value.to_pretty();
        let reparsed = JsonValue::parse(&printed)
            .unwrap_or_else(|err| panic!("own pretty output rejected: {err}\n{printed}"));
        prop_assert_eq!(&value, &reparsed);
    }

    #[test]
    fn prop_compact_print_parse_is_identity_and_single_line(seed in 0u64..u64::MAX) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let value = random_value(&mut state, 0);
        let printed = value.to_compact();
        // The wire framing invariant: compact output never contains a
        // literal newline (or any other raw control character).
        prop_assert!(printed.chars().all(|ch| (ch as u32) >= 0x20));
        let reparsed = JsonValue::parse(&printed)
            .unwrap_or_else(|err| panic!("own compact output rejected: {err}\n{printed}"));
        prop_assert_eq!(&value, &reparsed);
    }

    #[test]
    fn prop_parser_never_panics_on_mutated_documents(seed in 0u64..u64::MAX) {
        // Take a valid document, corrupt one byte, and require a clean
        // Ok/Err — never a panic. (Parsing happens on raw &str, so the
        // mutation is applied at the char level to keep the input UTF-8.)
        let mut state = seed.wrapping_add(7);
        let value = random_value(&mut state, 0);
        let mut chars: Vec<char> = value.to_compact().chars().collect();
        if !chars.is_empty() {
            let idx = (next(&mut state) as usize) % chars.len();
            chars[idx] = PALETTE[(next(&mut state) % PALETTE.len() as u64) as usize];
        }
        let mutated: String = chars.into_iter().collect();
        let _ = JsonValue::parse(&mutated); // must return, not panic
    }
}

fn nested_array(depth: usize) -> String {
    let mut doc = String::new();
    for _ in 0..depth {
        doc.push('[');
    }
    doc.push('1');
    for _ in 0..depth {
        doc.push(']');
    }
    doc
}

#[test]
fn accepts_documents_up_to_the_depth_cap() {
    let value = JsonValue::parse(&nested_array(MAX_DEPTH)).expect("MAX_DEPTH nesting is legal");
    let reparsed = JsonValue::parse(&value.to_compact()).expect("round-trip");
    assert_eq!(value, reparsed);
}

#[test]
fn rejects_documents_beyond_the_depth_cap() {
    let err = JsonValue::parse(&nested_array(MAX_DEPTH + 1)).expect_err("too deep");
    assert!(
        err.message.contains("nesting deeper than"),
        "unexpected error: {err}"
    );
    // A hostile unclosed prefix must fail the same way, not overflow the
    // parser stack.
    let bomb = "[".repeat(100_000);
    let err = JsonValue::parse(&bomb).expect_err("hostile nesting bomb");
    assert!(err.message.contains("nesting deeper than"));
    let object_bomb = "{\"k\":".repeat(100_000);
    assert!(JsonValue::parse(&object_bomb).is_err());
}

#[test]
fn rejects_truncated_strings_and_escapes_with_explicit_errors() {
    let err = JsonValue::parse("\"abc").expect_err("unterminated string");
    assert!(err.message.contains("unterminated string"), "{err}");

    let err = JsonValue::parse("\"abc\\").expect_err("unterminated escape");
    assert!(err.message.contains("unterminated escape"), "{err}");

    let err = JsonValue::parse("\"ab\\u12").expect_err("truncated \\u escape");
    assert!(err.message.contains("truncated \\u escape"), "{err}");

    let err = JsonValue::parse("\"\\ud800\"").expect_err("unpaired surrogate");
    assert!(err.message.contains("unpaired surrogate"), "{err}");

    let err = JsonValue::parse("\"\\q\"").expect_err("invalid escape");
    assert!(err.message.contains("invalid escape"), "{err}");
}
