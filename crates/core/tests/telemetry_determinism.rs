//! Telemetry is observational only. The contract the profile subsystem
//! rides on: attaching a [`MetricsRegistry`] to the executor and the
//! driver changes *nothing* about the trajectory — fronts and checkpoints
//! are byte-identical with telemetry on or off, on the serial executor or
//! a worker pool. Timings live in the registry; they never enter
//! checkpointed state.

use pathway_core::sweep::render_front;
use pathway_core::{spec_driver_with_executor, AnyProblem};
use pathway_moo::engine::{encode_checkpoint, MetricsRegistry, RunSpec};
use pathway_moo::exec::Executor;
use pathway_moo::EvalBackend;

const SPEC: &str = "pathway-spec v1\n\n\
                    [problem]\nname = schaffer\n\n\
                    [optimizer]\nkind = nsga2\npopulation = 24\n\n\
                    [run]\nseed = 99\nreference_point = 25, 25\n\n\
                    [stop]\nmax_generations = 12\n";

/// Runs the spec to completion on `backend`, with or without a registry
/// attached, and returns the exact bytes the CLI would persist: the
/// rendered front file and the encoded checkpoint.
fn run_case(backend: EvalBackend, telemetry: bool) -> (String, Vec<u8>) {
    let spec = RunSpec::from_text(SPEC).expect("spec parses");
    let problem = AnyProblem::from_spec(&spec.problem).expect("known problem");
    let executor = Executor::shared(backend);
    let registry = telemetry.then(MetricsRegistry::new);
    if let Some(registry) = &registry {
        executor.set_metrics(registry.clone());
    }
    let mut driver = spec_driver_with_executor(&spec, &problem, executor);
    if let Some(registry) = &registry {
        driver = driver.with_metrics(registry.clone());
    }
    while driver.run_for(usize::MAX) > 0 {}
    if let Some(registry) = &registry {
        // The metered runs must actually have been metering, or the
        // comparison proves nothing.
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter("phase.generation.calls"),
            Some(12),
            "telemetry was attached but recorded nothing"
        );
    }
    let front = render_front(&driver.front());
    let checkpoint = encode_checkpoint(&spec.to_text(), &driver.checkpoint());
    (front, checkpoint)
}

#[test]
fn telemetry_and_pooling_never_change_fronts_or_checkpoints() {
    let (front, checkpoint) = run_case(EvalBackend::Serial, false);
    for (backend, telemetry) in [
        (EvalBackend::Serial, true),
        (EvalBackend::Threads(2), false),
        (EvalBackend::Threads(2), true),
    ] {
        let (other_front, other_checkpoint) = run_case(backend, telemetry);
        assert_eq!(
            other_front, front,
            "front bytes diverged ({backend:?}, telemetry={telemetry})"
        );
        assert_eq!(
            other_checkpoint, checkpoint,
            "checkpoint bytes diverged ({backend:?}, telemetry={telemetry})"
        );
    }
}
