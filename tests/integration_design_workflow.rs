//! End-to-end integration of the design workflow: PMO2 optimization, front
//! mining, candidate-B extraction and robustness screening through the public
//! `pathway-core` API.

use pathway_core::prelude::*;

fn quick_outcome(seed: u64) -> LeafDesignOutcome {
    LeafDesignStudy::new(Scenario::present_low_export())
        .with_budget(30, 60)
        .with_migration(20, 0.5)
        .with_robustness_trials(200)
        .run(seed)
}

#[test]
fn the_front_is_a_genuine_trade_off_curve() {
    let outcome = quick_outcome(1);
    assert!(outcome.front.len() >= 5);
    // Sort by uptake; nitrogen must be non-decreasing along the sorted front
    // (otherwise one design would dominate another).
    let mut designs = outcome.front.clone();
    designs.sort_by(|a, b| a.uptake.partial_cmp(&b.uptake).unwrap());
    for pair in designs.windows(2) {
        assert!(
            pair[1].nitrogen >= pair[0].nitrogen - 1e-6,
            "front contains a dominated design"
        );
    }
}

#[test]
fn mined_selections_are_internally_consistent() {
    let outcome = quick_outcome(2);
    let max_uptake = outcome.max_uptake();
    let min_nitrogen = outcome.min_nitrogen();
    let knee = outcome.closest_to_ideal();
    assert!(max_uptake.uptake >= knee.uptake);
    assert!(min_nitrogen.nitrogen <= knee.nitrogen);
    // The knee lies between the extremes on both objectives.
    assert!(knee.uptake >= min_nitrogen.uptake - 1e-9);
    assert!(knee.nitrogen <= max_uptake.nitrogen + 1e-9);
}

#[test]
fn robustness_screening_returns_yields_within_range() {
    let outcome = quick_outcome(3);
    let selected = outcome.selected_designs(150, 10);
    for (design, yield_percent) in [
        &selected.closest_to_ideal,
        &selected.max_uptake,
        &selected.min_nitrogen,
        &selected.max_yield,
    ] {
        assert!((0.0..=100.0).contains(yield_percent));
        assert!(design.uptake > 0.0);
        assert!(design.nitrogen > 0.0);
    }
    // The max-yield pick is at least as robust as the knee by construction.
    assert!(selected.max_yield.1 >= selected.closest_to_ideal.1);
}

#[test]
fn partitions_on_the_front_stay_inside_the_search_box() {
    use pathway_moo::MultiObjectiveProblem;
    let outcome = quick_outcome(4);
    let problem = LeafRedesignProblem::new(Scenario::present_low_export());
    let bounds = problem.bounds();
    for design in &outcome.front {
        for (value, (lower, upper)) in design.partition.capacities().iter().zip(&bounds) {
            assert!(value >= lower && value <= upper);
        }
    }
}

#[test]
fn reported_figures_of_merit_are_reproducible_per_seed() {
    let a = quick_outcome(9);
    let b = quick_outcome(9);
    assert_eq!(a.front.len(), b.front.len());
    assert!((a.max_uptake().uptake - b.max_uptake().uptake).abs() < 1e-12);
    assert!((a.min_nitrogen().nitrogen - b.min_nitrogen().nitrogen).abs() < 1e-12);
}

#[test]
fn different_scenarios_produce_different_fronts() {
    let present = quick_outcome(5);
    let future = LeafDesignStudy::new(Scenario::new(
        CarbonDioxideEra::Future,
        TriosePhosphateExport::Low,
    ))
    .with_budget(30, 60)
    .with_migration(20, 0.5)
    .run(5);
    // Higher CO2 admits higher maximum uptake on the front.
    assert!(future.max_uptake().uptake > present.max_uptake().uptake * 0.9);
}
