//! Integration of the quality indicators with real optimizer output: the
//! PMO2-vs-MOEA/D comparison of the paper's Table 1 on a reduced budget.

use pathway_core::prelude::*;
use pathway_moo::metrics::{global_coverage, hypervolume, relative_coverage, spacing, union_front};

fn objective_matrix(front: &[pathway_moo::Individual]) -> Vec<Vec<f64>> {
    front.iter().map(|i| i.objectives.clone()).collect()
}

#[test]
fn table_1_style_comparison_runs_end_to_end() {
    let problem = LeafRedesignProblem::new(Scenario::present_high_export());

    let pmo2_front = Archipelago::new(
        ArchipelagoConfig {
            islands: 2,
            island_config: Nsga2Config {
                population_size: 30,
                generations: 40,
                ..Default::default()
            },
            migration_interval: 20,
            migration_probability: 0.5,
            topology: MigrationTopology::Broadcast,
        },
        1,
    )
    .run(&problem);
    let moead_front = Moead::new(
        MoeadConfig {
            population_size: 30,
            generations: 40,
            ..Default::default()
        },
        1,
    )
    .run(&problem);

    let pmo2 = objective_matrix(&pmo2_front);
    let moead = objective_matrix(&moead_front);
    let global = union_front(&[pmo2.clone(), moead.clone()]);
    assert!(!global.is_empty());

    // Coverage metrics are proper fractions and the union front is at least as
    // large as the biggest contribution counted inside it.
    for front in [&pmo2, &moead] {
        let g = global_coverage(front, &global);
        let r = relative_coverage(front, &global);
        assert!((0.0..=1.0).contains(&g));
        assert!((0.0..=1.0).contains(&r));
    }
    let total_contribution = global_coverage(&pmo2, &global) + global_coverage(&moead, &global);
    assert!(total_contribution >= 1.0 - 1e-9);

    // Hypervolume uses a reference point dominated by every solution:
    // uptake >= 0 (so -uptake <= 0) and nitrogen below 2x natural.
    let reference = [1.0, 2.0 * EnzymePartition::NATURAL_NITROGEN];
    let hv_pmo2 = hypervolume(&pmo2, &reference);
    let hv_moead = hypervolume(&moead, &reference);
    let hv_union = hypervolume(&global, &reference);
    assert!(hv_pmo2 > 0.0);
    assert!(hv_union >= hv_pmo2.max(hv_moead) - 1e-6);
}

#[test]
fn pmo2_front_is_at_least_as_good_as_a_single_island_with_the_same_budget() {
    let problem = LeafRedesignProblem::new(Scenario::present_high_export());
    // Single NSGA-II with population 30 and 60 generations vs PMO2 with two
    // islands of 30 for 30 generations each: identical evaluation budgets.
    let single = Nsga2::new(
        Nsga2Config {
            population_size: 30,
            generations: 60,
            ..Default::default()
        },
        3,
    )
    .run(&problem);
    let pmo2 = Archipelago::new(
        ArchipelagoConfig {
            islands: 2,
            island_config: Nsga2Config {
                population_size: 30,
                generations: 30,
                ..Default::default()
            },
            migration_interval: 10,
            migration_probability: 0.5,
            topology: MigrationTopology::Broadcast,
        },
        3,
    )
    .run(&problem);

    let reference = [1.0, 2.0 * EnzymePartition::NATURAL_NITROGEN];
    let hv_single = hypervolume(&objective_matrix(&single), &reference);
    let hv_pmo2 = hypervolume(&objective_matrix(&pmo2), &reference);
    // PMO2 should be competitive: allow 15% slack since the budgets are tiny
    // and both runs are stochastic.
    assert!(
        hv_pmo2 >= 0.85 * hv_single,
        "PMO2 hypervolume {hv_pmo2} fell far below the single-island run {hv_single}"
    );
}

#[test]
fn spacing_of_an_evolved_front_is_finite_and_positive() {
    let problem = LeafRedesignProblem::new(Scenario::present_low_export());
    let front = Nsga2::new(
        Nsga2Config {
            population_size: 30,
            generations: 30,
            ..Default::default()
        },
        4,
    )
    .run(&problem);
    let matrix = objective_matrix(&front);
    let s = spacing(&matrix);
    assert!(s.is_finite());
    if matrix.len() > 2 {
        assert!(s >= 0.0);
    }
}
