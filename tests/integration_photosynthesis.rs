//! Cross-crate integration tests: the photosynthesis substrate viewed through
//! the public `pathway-core` API, and consistency between the analytic and the
//! ODE-based evaluators.

use pathway_core::prelude::*;
use pathway_photosynthesis::OdeUptakeEvaluator;

#[test]
fn analytic_and_ode_evaluators_agree_qualitatively() {
    let scenario = Scenario::present_low_export();
    let analytic = UptakeModel::new();
    let ode = OdeUptakeEvaluator::fast();

    let natural = EnzymePartition::natural();
    let starved = natural.with_scaled(EnzymeKind::Rubisco, 0.1);

    let analytic_natural = analytic.co2_uptake(&natural, &scenario);
    let analytic_starved = analytic.co2_uptake(&starved, &scenario);
    let ode_natural = ode
        .co2_uptake(&natural, &scenario)
        .expect("natural leaf settles");
    let ode_starved = ode
        .co2_uptake(&starved, &scenario)
        .expect("starved leaf settles");

    // Both evaluators agree that cutting Rubisco to 10% collapses uptake.
    assert!(analytic_starved < 0.5 * analytic_natural);
    assert!(ode_starved < 0.7 * ode_natural);
    // And both report positive uptake for the natural leaf.
    assert!(analytic_natural > 0.0 && ode_natural > 0.0);
}

#[test]
fn problem_objectives_are_consistent_with_the_substrate() {
    use pathway_moo::MultiObjectiveProblem;
    let scenario = Scenario::present_high_export();
    let problem = LeafRedesignProblem::new(scenario);
    let partition = EnzymePartition::natural().scaled(1.5);
    let objectives = problem.evaluate(partition.capacities());
    let direct_uptake = UptakeModel::new().co2_uptake(&partition, &scenario);
    assert!((objectives[0] + direct_uptake).abs() < 1e-9);
    assert!((objectives[1] - partition.total_nitrogen()).abs() < 1e-9);
}

#[test]
fn co2_fertilisation_shows_up_in_every_layer() {
    let model = UptakeModel::new();
    let natural = EnzymePartition::natural();
    let mut uptakes = Vec::new();
    for era in CarbonDioxideEra::ALL {
        let scenario = Scenario::new(era, TriosePhosphateExport::Low);
        uptakes.push(model.co2_uptake(&natural, &scenario));
    }
    assert!(uptakes[0] < uptakes[1] && uptakes[1] < uptakes[2]);
}

#[test]
fn nitrogen_accounting_matches_the_papers_operating_point() {
    let natural = EnzymePartition::natural();
    assert!((natural.total_nitrogen() - EnzymePartition::NATURAL_NITROGEN).abs() < 1.0);
    // Rubisco is the dominant nitrogen sink, consistent with its role as the
    // nitrogen reservoir the paper discusses.
    let breakdown = natural.nitrogen_breakdown();
    let rubisco_share = breakdown[EnzymeKind::Rubisco.index()] / natural.total_nitrogen();
    assert!(rubisco_share > 0.4 && rubisco_share < 0.8);
}

#[test]
fn uptake_model_soft_minimum_respects_every_ceiling() {
    let model = UptakeModel::new();
    let generous = EnzymePartition::natural().scaled(4.0);
    for scenario in Scenario::all() {
        let result = model.evaluate(&generous, &scenario);
        assert!(result.co2_uptake <= model.electron_transport_ceiling + 1e-9);
        assert!(result.co2_uptake <= scenario.export.uptake_ceiling() + 1e-9);
    }
}
