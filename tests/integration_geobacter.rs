//! Cross-crate integration tests for the Geobacter substrate: FBA, the flux
//! optimization problem and the multi-objective search working together.

use pathway_core::prelude::*;
use pathway_fba::{steady_state_violation, FluxPerturbation, FluxRepair};
use pathway_moo::{Nsga2, Nsga2Config};

fn small_model() -> GeobacterModel {
    GeobacterModel::builder().reactions(80).seed(11).build()
}

#[test]
fn fba_extremes_bound_the_evolved_front() {
    let model = small_model();
    let max_biomass = model.max_biomass().expect("biomass FBA runs");
    let max_electron = model.max_electron().expect("electron FBA runs");

    let problem = GeobacterFluxProblem::new(&model).expect("problem builds");
    let config = Nsga2Config {
        population_size: 40,
        generations: 40,
        ..Default::default()
    };
    let front = Nsga2::new(config, 5).run(&problem);
    assert!(!front.is_empty());
    // Evolved solutions are allowed a bounded steady-state violation
    // (0.035 · radius · reactions), so they may overshoot the exact-FBA optima
    // by a margin of that order, but not arbitrarily.
    let slack = 0.035 * 5.0 * model.model().num_reactions() as f64 + 0.5;
    for individual in &front {
        let solution = problem.decode(&individual.variables);
        assert!(solution.biomass_production <= max_biomass.objective_value + slack);
        assert!(solution.electron_production <= max_electron.objective_value + slack);
    }
}

#[test]
fn evolved_solutions_respect_the_pinned_atp_maintenance_flux() {
    let model = small_model();
    let atp_index = model.atp_maintenance_reaction();
    let problem = GeobacterFluxProblem::new(&model).expect("problem builds");
    let config = Nsga2Config {
        population_size: 30,
        generations: 20,
        ..Default::default()
    };
    let front = Nsga2::new(config, 9).run(&problem);
    for individual in &front {
        assert!(
            (individual.variables[atp_index] - pathway_fba::geobacter::ATP_MAINTENANCE_FLUX).abs()
                < 1e-9,
            "the ATP maintenance flux must stay pinned at 0.45"
        );
    }
}

#[test]
fn repair_operator_improves_random_flux_vectors() {
    let model = small_model();
    let mut perturbation = FluxPerturbation::new(0.2, 5.0, 3);
    let repair = FluxRepair::default();
    let mut improved = 0;
    for _ in 0..10 {
        let mut fluxes = perturbation.random_vector(model.model());
        let before = steady_state_violation(model.model(), &fluxes).expect("dimensions match");
        let after = repair
            .repair(model.model(), &mut fluxes)
            .expect("repair runs");
        if after < before {
            improved += 1;
        }
    }
    assert!(
        improved >= 8,
        "repair only improved {improved}/10 random vectors"
    );
}

#[test]
fn study_violation_reduction_mirrors_the_paper() {
    // The paper reports the evolved solution violating the steady-state
    // constraint ~26x less than the initial guess. At reduced scale we only
    // require a clear order-of-magnitude style improvement.
    let outcome = GeobacterStudy::new()
        .with_reactions(80)
        .with_budget(40, 40)
        .run(13)
        .expect("study runs");
    assert!(outcome.initial_violation > 0.0);
    assert!(outcome.best_violation < outcome.initial_violation / 5.0);
    // The labelled A-E points are ordered by decreasing biomass production.
    let labelled = outcome.labelled_points(5);
    for pair in labelled.windows(2) {
        assert!(pair[0].biomass_production >= pair[1].biomass_production);
    }
}

#[test]
fn biomass_and_electron_objectives_genuinely_conflict() {
    let model = small_model();
    let problem = GeobacterFluxProblem::new(&model).expect("problem builds");
    let config = Nsga2Config {
        population_size: 40,
        generations: 40,
        ..Default::default()
    };
    let front = Nsga2::new(config, 21).run(&problem);
    let solutions: Vec<GeobacterSolution> = front
        .iter()
        .map(|individual| problem.decode(&individual.variables))
        .collect();
    let best_biomass = solutions
        .iter()
        .cloned()
        .max_by(|a, b| {
            a.biomass_production
                .partial_cmp(&b.biomass_production)
                .unwrap()
        })
        .unwrap();
    let best_electron = solutions
        .iter()
        .cloned()
        .max_by(|a, b| {
            a.electron_production
                .partial_cmp(&b.electron_production)
                .unwrap()
        })
        .unwrap();
    // If the front has more than one point, the two champions differ and the
    // electron champion pays in biomass (and vice versa).
    if solutions.len() > 1 {
        assert!(best_electron.biomass_production <= best_biomass.biomass_production + 1e-9);
        assert!(best_biomass.electron_production <= best_electron.electron_production + 1e-9);
    }
}
