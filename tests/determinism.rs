//! Determinism suite: `EvalBackend::Threads(n)` must reproduce
//! `EvalBackend::Serial` bit-for-bit for a fixed seed on every shipped
//! problem.
//!
//! Variation is RNG-driven and stays serial; only the (pure) objective
//! oracle runs on worker threads, and batch order is preserved, so parallel
//! evaluation may change wall-clock time but never the search trajectory.
//! CI runs this suite explicitly (`cargo test -q -- determinism`) so any
//! parallel-vs-serial divergence is caught on every push.

use pathway_core::prelude::*;
use pathway_moo::problems::{Schaffer, Zdt1};

/// Everything that defines an individual's identity, bit-for-bit.
fn signature(front: &[Individual]) -> Vec<(Vec<f64>, Vec<f64>, f64)> {
    front
        .iter()
        .map(|i| (i.variables.clone(), i.objectives.clone(), i.violation))
        .collect()
}

fn nsga2_front<P: MultiObjectiveProblem>(
    problem: &P,
    backend: EvalBackend,
    seed: u64,
) -> Vec<Individual> {
    let config = Nsga2Config {
        population_size: 32,
        generations: 25,
        backend,
        ..Default::default()
    };
    Nsga2::new(config, seed).run(problem)
}

#[test]
fn determinism_threads_match_serial_on_schaffer() {
    for seed in [1, 7, 99] {
        let serial = signature(&nsga2_front(&Schaffer, EvalBackend::Serial, seed));
        for workers in [2, 4] {
            let threaded = signature(&nsga2_front(&Schaffer, EvalBackend::Threads(workers), seed));
            assert_eq!(
                threaded, serial,
                "Threads({workers}) diverged at seed {seed}"
            );
        }
    }
}

#[test]
fn determinism_threads_match_serial_on_zdt1() {
    let problem = Zdt1 { variables: 8 };
    for seed in [3, 11] {
        let serial = signature(&nsga2_front(&problem, EvalBackend::Serial, seed));
        for workers in [2, 3] {
            let threaded = signature(&nsga2_front(&problem, EvalBackend::Threads(workers), seed));
            assert_eq!(
                threaded, serial,
                "Threads({workers}) diverged at seed {seed}"
            );
        }
    }
}

#[test]
fn determinism_threads_match_serial_on_geobacter() {
    let model = GeobacterModel::builder().reactions(48).seed(5).build();
    let problem = GeobacterFluxProblem::new(&model).expect("small model is feasible");
    let config = Nsga2Config {
        population_size: 20,
        generations: 10,
        ..Default::default()
    };
    let serial = signature(
        &Nsga2::new(
            Nsga2Config {
                backend: EvalBackend::Serial,
                ..config
            },
            13,
        )
        .run(&problem),
    );
    for workers in [2, 4] {
        let threaded = signature(
            &Nsga2::new(
                Nsga2Config {
                    backend: EvalBackend::Threads(workers),
                    ..config
                },
                13,
            )
            .run(&problem),
        );
        assert_eq!(threaded, serial, "Threads({workers}) diverged on Geobacter");
    }
}

#[test]
fn determinism_archipelago_threads_match_serial() {
    let archipelago_config = |backend| ArchipelagoConfig {
        islands: 2,
        island_config: Nsga2Config {
            population_size: 24,
            generations: 20,
            backend,
            ..Default::default()
        },
        migration_interval: 5,
        migration_probability: 0.5,
        topology: MigrationTopology::Broadcast,
    };
    let serial = Archipelago::new(archipelago_config(EvalBackend::Serial), 9).run(&Schaffer);
    let threaded = Archipelago::new(archipelago_config(EvalBackend::Threads(2)), 9).run(&Schaffer);
    assert_eq!(signature(&threaded), signature(&serial));
}
