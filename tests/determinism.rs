//! Determinism suite: `EvalBackend::Threads(n)` must reproduce
//! `EvalBackend::Serial` bit-for-bit for a fixed seed on every shipped
//! problem, and a `Driver` run split by checkpoint/resume at *any*
//! generation must reproduce the unsplit run bit-for-bit.
//!
//! Variation is RNG-driven and stays serial; only the (pure) objective
//! oracle runs on worker threads, and batch order is preserved, so parallel
//! evaluation may change wall-clock time but never the search trajectory.
//! Checkpoints capture every bit of run state (populations, RNG streams,
//! migration archives, counters, the driver's hypervolume history), so a
//! resumed run continues the exact trajectory. CI runs this suite
//! explicitly (`cargo test -q -- determinism`) so any divergence is caught
//! on every push.

use pathway_core::prelude::*;
use pathway_moo::problems::{Schaffer, Zdt1};

/// Everything that defines an individual's identity, bit-for-bit.
fn signature(front: &[Individual]) -> Vec<(Vec<f64>, Vec<f64>, f64)> {
    front
        .iter()
        .map(|i| (i.variables.clone(), i.objectives.clone(), i.violation))
        .collect()
}

fn nsga2_front<P: MultiObjectiveProblem>(
    problem: &P,
    backend: EvalBackend,
    seed: u64,
) -> Vec<Individual> {
    let config = Nsga2Config {
        population_size: 32,
        generations: 25,
        backend,
        ..Default::default()
    };
    Nsga2::new(config, seed).run(problem)
}

#[test]
fn determinism_threads_match_serial_on_schaffer() {
    for seed in [1, 7, 99] {
        let serial = signature(&nsga2_front(&Schaffer, EvalBackend::Serial, seed));
        for workers in [2, 4] {
            let threaded = signature(&nsga2_front(&Schaffer, EvalBackend::Threads(workers), seed));
            assert_eq!(
                threaded, serial,
                "Threads({workers}) diverged at seed {seed}"
            );
        }
    }
}

#[test]
fn determinism_threads_match_serial_on_zdt1() {
    let problem = Zdt1 { variables: 8 };
    for seed in [3, 11] {
        let serial = signature(&nsga2_front(&problem, EvalBackend::Serial, seed));
        for workers in [2, 3] {
            let threaded = signature(&nsga2_front(&problem, EvalBackend::Threads(workers), seed));
            assert_eq!(
                threaded, serial,
                "Threads({workers}) diverged at seed {seed}"
            );
        }
    }
}

#[test]
fn determinism_threads_match_serial_on_geobacter() {
    let model = GeobacterModel::builder().reactions(48).seed(5).build();
    let problem = GeobacterFluxProblem::new(&model).expect("small model is feasible");
    let config = Nsga2Config {
        population_size: 20,
        generations: 10,
        ..Default::default()
    };
    let serial = signature(
        &Nsga2::new(
            Nsga2Config {
                backend: EvalBackend::Serial,
                ..config
            },
            13,
        )
        .run(&problem),
    );
    for workers in [2, 4] {
        let threaded = signature(
            &Nsga2::new(
                Nsga2Config {
                    backend: EvalBackend::Threads(workers),
                    ..config
                },
                13,
            )
            .run(&problem),
        );
        assert_eq!(threaded, serial, "Threads({workers}) diverged on Geobacter");
    }
}

#[test]
fn determinism_archipelago_threads_match_serial() {
    let archipelago_config = |backend| ArchipelagoConfig {
        islands: 2,
        island_config: Nsga2Config {
            population_size: 24,
            generations: 20,
            backend,
            ..Default::default()
        },
        migration_interval: 5,
        migration_probability: 0.5,
        topology: MigrationTopology::Broadcast,
    };
    let serial = Archipelago::new(archipelago_config(EvalBackend::Serial), 9).run(&Schaffer);
    let threaded = Archipelago::new(archipelago_config(EvalBackend::Threads(2)), 9).run(&Schaffer);
    assert_eq!(signature(&threaded), signature(&serial));
}

// --- checkpoint/resume determinism -------------------------------------

/// The configuration under test: a 2-island archipelago with a short
/// migration interval, so split points land before, on and after migration
/// boundaries.
fn checkpoint_config(backend: EvalBackend) -> ArchipelagoConfig {
    ArchipelagoConfig {
        islands: 2,
        island_config: Nsga2Config {
            population_size: 16,
            generations: 0,
            backend,
            ..Default::default()
        },
        migration_interval: 3,
        migration_probability: 0.5,
        topology: MigrationTopology::Broadcast,
    }
}

fn checkpoint_driver(
    backend: EvalBackend,
    seed: u64,
    problem: &Schaffer,
) -> Driver<'_, Schaffer, Archipelago> {
    Driver::new(Archipelago::new(checkpoint_config(backend), seed), problem)
}

fn split_run(
    backend: EvalBackend,
    seed: u64,
    total: usize,
    split_at: usize,
) -> Vec<(Vec<f64>, Vec<f64>, f64)> {
    let stop = StoppingRule::MaxGenerations(total);
    let mut first = checkpoint_driver(backend, seed, &Schaffer).with_stopping(stop.clone());
    first.run_for(split_at);
    let checkpoint = first.checkpoint();
    drop(first);
    let fresh = Archipelago::new(checkpoint_config(backend), seed);
    let mut resumed = Driver::resume(fresh, &Schaffer, checkpoint)
        .expect("checkpoint matches the configuration")
        .with_stopping(stop);
    signature(&resumed.run())
}

/// A driver run split at *every* generation must be bit-identical to the
/// unsplit run, for the serial and the threaded evaluation backend alike.
#[test]
fn determinism_checkpoint_split_at_every_generation() {
    let total = 8;
    for backend in [EvalBackend::Serial, EvalBackend::Threads(2)] {
        let unsplit = signature(
            &checkpoint_driver(backend, 17, &Schaffer)
                .with_stopping(StoppingRule::MaxGenerations(total))
                .run(),
        );
        assert!(!unsplit.is_empty());
        for split_at in 0..=total {
            let split = split_run(backend, 17, total, split_at);
            assert_eq!(
                split, unsplit,
                "{backend:?} diverged when split at generation {split_at}"
            );
        }
    }
}

/// A checkpoint taken with one backend must resume bit-identically under
/// the other: backend choice is not part of the run state.
#[test]
fn determinism_checkpoint_crosses_backends() {
    let total = 6;
    let unsplit = signature(
        &checkpoint_driver(EvalBackend::Serial, 23, &Schaffer)
            .with_stopping(StoppingRule::MaxGenerations(total))
            .run(),
    );
    let stop = StoppingRule::MaxGenerations(total);
    let mut first =
        checkpoint_driver(EvalBackend::Serial, 23, &Schaffer).with_stopping(stop.clone());
    first.run_for(3);
    let checkpoint = first.checkpoint();
    let threaded = Archipelago::new(checkpoint_config(EvalBackend::Threads(4)), 23);
    let mut resumed = Driver::resume(threaded, &Schaffer, checkpoint)
        .expect("checkpoint matches the configuration")
        .with_stopping(stop);
    assert_eq!(signature(&resumed.run()), unsplit);
}

/// NSGA-II driven standalone splits bit-identically as well (the
/// archipelago tests cover the island + migration state on top).
#[test]
fn determinism_checkpoint_nsga2_standalone() {
    let problem = Zdt1 { variables: 6 };
    let config = Nsga2Config {
        population_size: 20,
        backend: EvalBackend::Threads(2),
        ..Default::default()
    };
    let stop = StoppingRule::MaxGenerations(10);
    let unsplit = signature(
        &Driver::new(Nsga2::new(config, 3), &problem)
            .with_stopping(stop.clone())
            .run(),
    );
    for split_at in [1, 5, 9] {
        let mut first = Driver::new(Nsga2::new(config, 3), &problem).with_stopping(stop.clone());
        first.run_for(split_at);
        let mut resumed = Driver::resume(Nsga2::new(config, 3), &problem, first.checkpoint())
            .expect("checkpoint matches the configuration")
            .with_stopping(stop.clone());
        assert_eq!(
            signature(&resumed.run()),
            unsplit,
            "NSGA-II diverged when split at generation {split_at}"
        );
    }
}

/// MOEA/D splits bit-identically too: the ideal point and RNG stream are
/// part of the snapshot.
#[test]
fn determinism_checkpoint_moead_standalone() {
    let config = MoeadConfig {
        population_size: 24,
        neighborhood_size: 8,
        ..Default::default()
    };
    let stop = StoppingRule::MaxGenerations(8);
    let unsplit = signature(
        &Driver::new(Moead::new(config, 5), &Schaffer)
            .with_stopping(stop.clone())
            .run(),
    );
    for split_at in [2, 7] {
        let mut first = Driver::new(Moead::new(config, 5), &Schaffer).with_stopping(stop.clone());
        first.run_for(split_at);
        let mut resumed = Driver::resume(Moead::new(config, 5), &Schaffer, first.checkpoint())
            .expect("checkpoint matches the configuration")
            .with_stopping(stop.clone());
        assert_eq!(
            signature(&resumed.run()),
            unsplit,
            "MOEA/D diverged when split at generation {split_at}"
        );
    }
}
