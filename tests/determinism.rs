//! Determinism suite: `EvalBackend::Threads(n)` — which since the executor
//! refactor means a persistent worker pool — must reproduce
//! `EvalBackend::Serial` bit-for-bit for a fixed seed on every shipped
//! problem, and a `Driver` run split by checkpoint/resume at *any*
//! generation must reproduce the unsplit run bit-for-bit.
//!
//! Variation is RNG-driven and stays serial; only the objective oracle runs
//! on worker threads, and batch order is preserved, so parallel evaluation
//! may change wall-clock time but never the search trajectory. The
//! batch-amortized oracles keep the same contract: the Geobacter residual's
//! whole-batch sparse mat×mat kernel is bit-identical to the per-candidate
//! path, and the warm-started ODE leaf oracle freezes its parent pool per
//! batch (`prepare_batch`) so chunked pooled evaluation matches serial.
//! Checkpoints capture every bit of run state (populations, RNG streams,
//! migration archives, counters, the driver's hypervolume history), so a
//! resumed run continues the exact trajectory — executors are
//! configuration, not state, so a run may even resume under a different
//! worker count. CI runs this suite explicitly
//! (`cargo test -q -- determinism`) so any divergence is caught on every
//! push.

use std::sync::Arc;

use pathway_core::prelude::*;
use pathway_moo::problems::{Schaffer, Zdt1};
use pathway_photosynthesis::EnzymePartition;

/// Everything that defines an individual's identity, bit-for-bit.
fn signature(front: &[Individual]) -> Vec<(Vec<f64>, Vec<f64>, f64)> {
    front
        .iter()
        .map(|i| (i.variables.clone(), i.objectives.clone(), i.violation))
        .collect()
}

fn nsga2_front<P: MultiObjectiveProblem>(
    problem: &P,
    backend: EvalBackend,
    seed: u64,
) -> Vec<Individual> {
    let config = Nsga2Config {
        population_size: 32,
        generations: 25,
        backend,
        ..Default::default()
    };
    Nsga2::new(config, seed).run(problem)
}

#[test]
fn determinism_threads_match_serial_on_schaffer() {
    for seed in [1, 7, 99] {
        let serial = signature(&nsga2_front(&Schaffer, EvalBackend::Serial, seed));
        for workers in [2, 4] {
            let threaded = signature(&nsga2_front(&Schaffer, EvalBackend::Threads(workers), seed));
            assert_eq!(
                threaded, serial,
                "Threads({workers}) diverged at seed {seed}"
            );
        }
    }
}

#[test]
fn determinism_threads_match_serial_on_zdt1() {
    let problem = Zdt1 { variables: 8 };
    for seed in [3, 11] {
        let serial = signature(&nsga2_front(&problem, EvalBackend::Serial, seed));
        for workers in [2, 3] {
            let threaded = signature(&nsga2_front(&problem, EvalBackend::Threads(workers), seed));
            assert_eq!(
                threaded, serial,
                "Threads({workers}) diverged at seed {seed}"
            );
        }
    }
}

#[test]
fn determinism_threads_match_serial_on_geobacter() {
    let model = GeobacterModel::builder().reactions(48).seed(5).build();
    let problem = GeobacterFluxProblem::new(&model).expect("small model is feasible");
    let config = Nsga2Config {
        population_size: 20,
        generations: 10,
        ..Default::default()
    };
    let serial = signature(
        &Nsga2::new(
            Nsga2Config {
                backend: EvalBackend::Serial,
                ..config
            },
            13,
        )
        .run(&problem),
    );
    for workers in [2, 4] {
        let threaded = signature(
            &Nsga2::new(
                Nsga2Config {
                    backend: EvalBackend::Threads(workers),
                    ..config
                },
                13,
            )
            .run(&problem),
        );
        assert_eq!(threaded, serial, "Threads({workers}) diverged on Geobacter");
    }
}

#[test]
fn determinism_archipelago_threads_match_serial() {
    let archipelago_config = |backend| ArchipelagoConfig {
        islands: 2,
        island_config: Nsga2Config {
            population_size: 24,
            generations: 20,
            backend,
            ..Default::default()
        },
        migration_interval: 5,
        migration_probability: 0.5,
        topology: MigrationTopology::Broadcast,
    };
    let serial = Archipelago::new(archipelago_config(EvalBackend::Serial), 9).run(&Schaffer);
    let threaded = Archipelago::new(archipelago_config(EvalBackend::Threads(2)), 9).run(&Schaffer);
    assert_eq!(signature(&threaded), signature(&serial));
}

// --- checkpoint/resume determinism -------------------------------------

/// The configuration under test: a 2-island archipelago with a short
/// migration interval, so split points land before, on and after migration
/// boundaries.
fn checkpoint_config(backend: EvalBackend) -> ArchipelagoConfig {
    ArchipelagoConfig {
        islands: 2,
        island_config: Nsga2Config {
            population_size: 16,
            generations: 0,
            backend,
            ..Default::default()
        },
        migration_interval: 3,
        migration_probability: 0.5,
        topology: MigrationTopology::Broadcast,
    }
}

fn checkpoint_driver(
    backend: EvalBackend,
    seed: u64,
    problem: &Schaffer,
) -> Driver<&Schaffer, Archipelago> {
    Driver::new(Archipelago::new(checkpoint_config(backend), seed), problem)
}

fn split_run(
    backend: EvalBackend,
    seed: u64,
    total: usize,
    split_at: usize,
) -> Vec<(Vec<f64>, Vec<f64>, f64)> {
    let stop = StoppingRule::MaxGenerations(total);
    let mut first = checkpoint_driver(backend, seed, &Schaffer).with_stopping(stop.clone());
    first.run_for(split_at);
    let checkpoint = first.checkpoint();
    drop(first);
    let fresh = Archipelago::new(checkpoint_config(backend), seed);
    let mut resumed = Driver::resume(fresh, &Schaffer, checkpoint)
        .expect("checkpoint matches the configuration")
        .with_stopping(stop);
    signature(&resumed.run())
}

/// A driver run split at *every* generation must be bit-identical to the
/// unsplit run, for the serial and the threaded evaluation backend alike.
#[test]
fn determinism_checkpoint_split_at_every_generation() {
    let total = 8;
    for backend in [EvalBackend::Serial, EvalBackend::Threads(2)] {
        let unsplit = signature(
            &checkpoint_driver(backend, 17, &Schaffer)
                .with_stopping(StoppingRule::MaxGenerations(total))
                .run(),
        );
        assert!(!unsplit.is_empty());
        for split_at in 0..=total {
            let split = split_run(backend, 17, total, split_at);
            assert_eq!(
                split, unsplit,
                "{backend:?} diverged when split at generation {split_at}"
            );
        }
    }
}

/// A checkpoint taken with one backend must resume bit-identically under
/// the other: backend choice is not part of the run state.
#[test]
fn determinism_checkpoint_crosses_backends() {
    let total = 6;
    let unsplit = signature(
        &checkpoint_driver(EvalBackend::Serial, 23, &Schaffer)
            .with_stopping(StoppingRule::MaxGenerations(total))
            .run(),
    );
    let stop = StoppingRule::MaxGenerations(total);
    let mut first =
        checkpoint_driver(EvalBackend::Serial, 23, &Schaffer).with_stopping(stop.clone());
    first.run_for(3);
    let checkpoint = first.checkpoint();
    let threaded = Archipelago::new(checkpoint_config(EvalBackend::Threads(4)), 23);
    let mut resumed = Driver::resume(threaded, &Schaffer, checkpoint)
        .expect("checkpoint matches the configuration")
        .with_stopping(stop);
    assert_eq!(signature(&resumed.run()), unsplit);
}

/// NSGA-II driven standalone splits bit-identically as well (the
/// archipelago tests cover the island + migration state on top).
#[test]
fn determinism_checkpoint_nsga2_standalone() {
    let problem = Zdt1 { variables: 6 };
    let config = Nsga2Config {
        population_size: 20,
        backend: EvalBackend::Threads(2),
        ..Default::default()
    };
    let stop = StoppingRule::MaxGenerations(10);
    let unsplit = signature(
        &Driver::new(Nsga2::new(config, 3), &problem)
            .with_stopping(stop.clone())
            .run(),
    );
    for split_at in [1, 5, 9] {
        let mut first = Driver::new(Nsga2::new(config, 3), &problem).with_stopping(stop.clone());
        first.run_for(split_at);
        let mut resumed = Driver::resume(Nsga2::new(config, 3), &problem, first.checkpoint())
            .expect("checkpoint matches the configuration")
            .with_stopping(stop.clone());
        assert_eq!(
            signature(&resumed.run()),
            unsplit,
            "NSGA-II diverged when split at generation {split_at}"
        );
    }
}

// --- persistent-executor determinism ------------------------------------

/// One shared worker pool, injected explicitly and reused across an entire
/// run, must reproduce the serial run bit for bit — at every checkpoint
/// split point. This is the pooled-executor variant of
/// `determinism_checkpoint_split_at_every_generation`: the *same* pool
/// instance serves the first half, the checkpoint, and the resumed half,
/// exactly like the `pathway` CLI's `--threads` does.
#[test]
fn determinism_pooled_executor_splits_reuse_one_pool() {
    let total = 8;
    let serial = signature(
        &checkpoint_driver(EvalBackend::Serial, 29, &Schaffer)
            .with_stopping(StoppingRule::MaxGenerations(total))
            .run(),
    );
    assert!(!serial.is_empty());
    let pool: Arc<Executor> = Executor::shared(EvalBackend::Threads(3));
    for split_at in 0..=total {
        let stop = StoppingRule::MaxGenerations(total);
        let mut first = Archipelago::new(checkpoint_config(EvalBackend::Serial), 29);
        first.set_executor(Arc::clone(&pool));
        let mut first = Driver::new(first, &Schaffer).with_stopping(stop.clone());
        first.run_for(split_at);
        let checkpoint = first.checkpoint();
        drop(first);
        let mut fresh = Archipelago::new(checkpoint_config(EvalBackend::Serial), 29);
        fresh.set_executor(Arc::clone(&pool));
        let mut resumed = Driver::resume(fresh, &Schaffer, checkpoint)
            .expect("checkpoint matches the configuration")
            .with_stopping(stop);
        assert_eq!(
            signature(&resumed.run()),
            serial,
            "pooled executor diverged from serial when split at generation {split_at}"
        );
    }
}

/// A shared pool injected into a plain NSGA-II run matches serial too (the
/// archipelago test above covers island sharing on top).
#[test]
fn determinism_pooled_executor_matches_serial_on_nsga2() {
    let problem = Zdt1 { variables: 8 };
    let config = Nsga2Config {
        population_size: 24,
        generations: 15,
        ..Default::default()
    };
    let serial = signature(&Nsga2::new(config, 41).run(&problem));
    let pool = Executor::shared(EvalBackend::Threads(4));
    let mut pooled = Nsga2::new(config, 41);
    pooled.set_executor(pool);
    assert_eq!(signature(&pooled.run(&problem)), serial);
}

// --- batched-oracle determinism -----------------------------------------

/// The Geobacter whole-batch residual (one sparse matrix × matrix product)
/// must be bit-identical to the per-candidate path it replaces.
#[test]
fn determinism_batched_geobacter_oracle_matches_per_candidate() {
    let model = GeobacterModel::builder().reactions(48).seed(5).build();
    let problem = GeobacterFluxProblem::new(&model).expect("small model is feasible");
    // A spread of candidates: the reference, perturbations, and a heavily
    // unbalanced vector that exceeds the violation tolerance.
    let mut xs = vec![problem.reference_fluxes().to_vec()];
    for (step, scale) in [(7usize, 0.25), (11, -0.5), (3, 2.0)] {
        let mut x = problem.reference_fluxes().to_vec();
        for value in x.iter_mut().step_by(step) {
            *value += scale;
        }
        xs.push(x);
    }
    let mut unbalanced = problem.reference_fluxes().to_vec();
    unbalanced[0] += 500.0;
    xs.push(unbalanced);

    let batched = problem.evaluate_batch(&xs);
    assert!(batched.iter().any(|(_, violation)| *violation > 0.0));
    for (x, (objectives, violation)) in xs.iter().zip(&batched) {
        assert_eq!(objectives, &problem.evaluate(x), "objectives diverged");
        assert_eq!(
            *violation,
            problem.constraint_violation(x),
            "violation diverged"
        );
    }
    // And through the executors: pooled chunking changes nothing.
    let serial = Executor::serial().evaluate_batch(&problem, &xs);
    let pooled = Executor::new(EvalBackend::Threads(2)).evaluate_batch(&problem, &xs);
    assert_eq!(serial, pooled);
}

/// The warm-started ODE leaf oracle: batched evaluation must match the
/// per-candidate path against the same (frozen) parent pool, and a pooled
/// multi-generation run must match the serial one bit for bit even though
/// every generation warm-starts from the previous one's steady states.
#[test]
fn determinism_warm_started_leaf_oracle_matches_per_candidate_and_serial() {
    let natural = EnzymePartition::natural();
    let batch: Vec<Vec<f64>> = [1.0, 1.1, 1.3]
        .iter()
        .map(|&factor| natural.scaled(factor).capacities().to_vec())
        .collect();

    // Batched == per-candidate on a fresh (cold-pool) problem.
    let batched_problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
    let itemwise_problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
    for (x, (objectives, _)) in batch.iter().zip(batched_problem.evaluate_batch(&batch)) {
        assert_eq!(objectives, itemwise_problem.evaluate(x));
    }

    // Serial vs pooled executors across generations (warm starts engaged
    // from generation 1 on).
    let serial_problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
    let pooled_problem = OdeLeafRedesignProblem::new(Scenario::present_low_export());
    let serial = Executor::serial();
    let pooled = Executor::new(EvalBackend::Threads(3));
    for generation in 0..2 {
        assert_eq!(
            serial.evaluate_batch(&serial_problem, &batch),
            pooled.evaluate_batch(&pooled_problem, &batch),
            "warm-started generation {generation} diverged"
        );
    }
    assert!(
        serial_problem.warm_start_pool_size() > 0,
        "the second generation must actually have warm-started"
    );
}

// --- work-stealing splitter determinism ---------------------------------

/// A deliberately skew-costed problem: low-index candidates burn far more
/// CPU than the rest, so fixed contiguous chunking would pin the expensive
/// head onto lane 0 while the other lanes drain and turn thief — exactly
/// the shape that exercises the executor's tail stealing. The objectives
/// are pure functions of the variables (the burn feeds into them), so any
/// steal schedule must still commit results by slot.
struct SkewedCost;

impl MultiObjectiveProblem for SkewedCost {
    fn num_variables(&self) -> usize {
        2
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 64.0); 2]
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let iterations = if x[0] < 8.0 { 60_000 } else { 100 };
        let mut acc = x[1];
        for i in 0..iterations {
            acc = (acc + i as f64 * 1e-9).sin().mul_add(0.5, x[1]);
        }
        vec![std::hint::black_box(acc), x[0] + x[1]]
    }
}

/// The index-stealing splitter must reproduce serial evaluation
/// byte-for-byte for *any* lane count on a workload skewed enough that
/// steals actually happen: results commit by slot, so the steal schedule
/// (which varies run to run) can never show in the output.
#[test]
fn determinism_stealing_splitter_is_slot_exact_for_any_lane_count() {
    let batch: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, (i % 5) as f64]).collect();
    let serial = Executor::serial().evaluate_batch(&SkewedCost, &batch);
    let mut steals_seen = 0;
    for workers in [2, 3, 4, 6] {
        let pooled = Executor::new(EvalBackend::Threads(workers));
        let registry = pathway_moo::engine::MetricsRegistry::new();
        pooled.set_metrics(registry.clone());
        assert_eq!(
            pooled.evaluate_batch(&SkewedCost, &batch),
            serial,
            "Threads({workers}) diverged from serial under stealing"
        );
        steals_seen += registry.snapshot().counter("exec.steal_count").unwrap_or(0);
    }
    assert!(
        steals_seen > 0,
        "the skewed batch must trigger at least one steal across the lane sweep"
    );
}

/// MOEA/D splits bit-identically too: the ideal point and RNG stream are
/// part of the snapshot.
#[test]
fn determinism_checkpoint_moead_standalone() {
    let config = MoeadConfig {
        population_size: 24,
        neighborhood_size: 8,
        ..Default::default()
    };
    let stop = StoppingRule::MaxGenerations(8);
    let unsplit = signature(
        &Driver::new(Moead::new(config, 5), &Schaffer)
            .with_stopping(stop.clone())
            .run(),
    );
    for split_at in [2, 7] {
        let mut first = Driver::new(Moead::new(config, 5), &Schaffer).with_stopping(stop.clone());
        first.run_for(split_at);
        let mut resumed = Driver::resume(Moead::new(config, 5), &Schaffer, first.checkpoint())
            .expect("checkpoint matches the configuration")
            .with_stopping(stop.clone());
        assert_eq!(
            signature(&resumed.run()),
            unsplit,
            "MOEA/D diverged when split at generation {split_at}"
        );
    }
}
