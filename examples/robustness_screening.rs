//! Robustness screening of leaf designs: the ρ/Γ analysis of Section 2.3.
//!
//! The example compares the natural leaf with an aggressively tuned
//! maximum-uptake design and a balanced trade-off design, reporting the global
//! yield Γ and the per-enzyme local yields that reveal which enzymes make a
//! design fragile.
//!
//! Run with: `cargo run --release --example robustness_screening`
//!
//! The balanced design comes from a [`Study`] with a hypervolume-stagnation
//! stopping rule stacked on the generation budget, so the search exits as
//! soon as the front stops improving. Set `PATHWAY_EXAMPLE_BUDGET=quick` (as
//! CI does) to shrink the budgets.

use pathway_core::prelude::*;
use pathway_moo::robustness::{global_yield, local_yield, RobustnessOptions};

mod common;
use common::quick_budget;

fn report(label: &str, partition: &EnzymePartition, scenario: &Scenario, trials: usize) {
    let problem = LeafRedesignProblem::new(*scenario);
    let options = RobustnessOptions {
        global_trials: trials,
        local_trials: (trials / 20).max(10),
        ..Default::default()
    };
    let uptake = problem.uptake(partition.capacities());
    let global = global_yield(partition.capacities(), |x| problem.uptake(x), &options);
    let local = local_yield(partition.capacities(), |x| problem.uptake(x), &options);

    println!(
        "{label}: uptake {:.2} µmol/m²/s, nitrogen {:.0} mg/l, global yield {:.0}%",
        uptake,
        partition.total_nitrogen(),
        global.yield_percent()
    );
    // The three most fragile enzymes under single-enzyme perturbation.
    let mut per_enzyme: Vec<(&str, f64)> = EnzymeKind::ALL
        .iter()
        .map(|k| k.name())
        .zip(local.per_variable_yield.iter().copied())
        .collect();
    per_enzyme.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("yields are finite"));
    print!("  most sensitive enzymes:");
    for (name, yield_fraction) in per_enzyme.iter().take(3) {
        print!(" {name} ({:.0}%)", yield_fraction * 100.0);
    }
    println!();
}

fn main() {
    let (population, generations, trials) = if quick_budget() {
        (16, 30, 300)
    } else {
        (40, 80, 2_000)
    };
    let scenario = Scenario::present_low_export();

    // 1. The natural leaf.
    report(
        "natural leaf        ",
        &EnzymePartition::natural(),
        &scenario,
        trials,
    );

    // 2. A hand-tuned maximum-uptake leaf: everything scaled up, which the
    //    paper finds to be less robust than interior trade-off points.
    let aggressive = EnzymePartition::natural().scaled(3.0);
    report("aggressive (3x) leaf", &aggressive, &scenario, trials);

    // 3. A balanced design straight from a short PMO2 run, with an early
    //    exit once the hypervolume stops moving.
    let study = Study::new(LeafRedesignProblem::new(scenario))
        .with_budget(population, generations)
        .with_migration((generations / 2).max(1), 0.5)
        .with_stopping(StoppingRule::HypervolumeStagnation {
            window: 15,
            epsilon: 1e-6,
        });
    let result = study.run(3);
    let outcome = LeafDesignOutcome::from_front(scenario, result.front, result.evaluations);
    let knee = outcome.closest_to_ideal();
    report("closest-to-ideal    ", &knee.partition, &scenario, trials);

    println!();
    println!(
        "designs screened from a front of {} Pareto-optimal partitions \
         ({} of {} budgeted generations used)",
        outcome.front.len(),
        result.generations,
        generations
    );
}
