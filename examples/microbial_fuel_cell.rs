//! Microbial fuel cell design: trade biomass growth against electron transfer
//! in the synthetic *Geobacter sulfurreducens* model (the paper's Section 3.2
//! and Figure 4).
//!
//! Run with: `cargo run --release --example microbial_fuel_cell`
//!
//! The search is a generic [`Study`] over a [`GeobacterFluxProblem`], driven
//! with a checkpoint mid-run to demonstrate that a split run reproduces the
//! unsplit trajectory bit for bit. The example uses a 300-reaction synthetic
//! model so it finishes quickly; the Figure 4 experiment binary (`cargo run
//! --release -p pathway-bench --bin figure4`) runs the full 608-reaction
//! scale. Set `PATHWAY_EXAMPLE_BUDGET=quick` (as CI does) to shrink the
//! budgets.

use pathway_core::prelude::*;
use pathway_core::render_table;

mod common;
use common::quick_budget;

fn main() {
    let (reactions, population, generations) = if quick_budget() {
        (100, 24, 30)
    } else {
        (300, 60, 120)
    };

    // First look at the pure FBA extremes of the synthetic organism.
    let model = GeobacterModel::builder().reactions(reactions).build();
    let max_biomass = model.max_biomass().expect("biomass FBA is feasible");
    let max_electron = model.max_electron().expect("electron FBA is feasible");
    println!(
        "FBA extremes: max biomass {:.3} 1/h, max electron production {:.1} mmol/gDW/h",
        max_biomass.objective_value, max_electron.objective_value
    );

    // The paper's "initial guess" violation reference: a random vector in
    // the model's raw flux bounds, far from steady state.
    let problem = GeobacterFluxProblem::new(&model).expect("the FBA reference is feasible");
    let mut perturbation = pathway_fba::FluxPerturbation::new(0.1, 10.0, 7);
    let random_guess = perturbation.random_vector(problem.model());
    let initial_violation = pathway_fba::steady_state_violation(problem.model(), &random_guess)
        .expect("violation of a random guess is defined");

    // Then run the multi-objective search over the full flux vector. The
    // offspring batches of each island are evaluated on 4 worker threads;
    // swap in `EvalBackend::Serial` and the result is bit-identical, just
    // slower on multicore hardware.
    let study = Study::new(problem)
        .with_budget(population, generations)
        .with_migration((generations / 2).max(1), 0.5)
        .with_backend(EvalBackend::Threads(4));

    // Drive the first half, checkpoint, and resume — the resumed run is
    // bit-identical to driving straight through (the determinism suite
    // enforces this at every split point).
    let mut first_half = study.driver(7);
    first_half.run_for(generations / 2);
    let checkpoint = first_half.checkpoint();
    println!(
        "checkpoint at generation {} ({} evaluations so far)",
        checkpoint.generation,
        first_half.optimizer().evaluations(),
    );
    let mut resumed = Driver::resume(study.optimizer(7), study.problem(), checkpoint)
        .expect("checkpoint matches the study configuration")
        .with_stopping(StoppingRule::MaxGenerations(study.generations()));
    let front = resumed.run();

    let solutions: Vec<GeobacterSolution> = front
        .iter()
        .map(|individual| study.problem().decode(&individual.variables))
        .collect();
    let best_violation = solutions
        .iter()
        .map(|s| s.violation)
        .fold(f64::INFINITY, f64::min);
    let outcome = GeobacterOutcome {
        front: solutions,
        initial_violation,
        best_violation,
    };

    println!(
        "multi-objective search: {} non-dominated flux distributions",
        outcome.front.len()
    );
    println!(
        "steady-state violation: random initial guess {:.3e}, best evolved {:.3e} ({}x reduction)",
        outcome.initial_violation,
        outcome.best_violation,
        (outcome.initial_violation / outcome.best_violation.max(1e-12)).round()
    );

    let labels = ["A", "B", "C", "D", "E"];
    let rows: Vec<Vec<String>> = outcome
        .labelled_points(labels.len())
        .iter()
        .zip(labels.iter())
        .map(|(point, label)| {
            vec![
                label.to_string(),
                format!("{:.2}", point.electron_production),
                format!("{:.3}", point.biomass_production),
                format!("{:.2e}", point.violation),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            &[
                "Point",
                "Electron production",
                "Biomass production",
                "Violation"
            ],
            &rows
        )
    );
}
