//! Microbial fuel cell design: trade biomass growth against electron transfer
//! in the synthetic *Geobacter sulfurreducens* model (the paper's Section 3.2
//! and Figure 4).
//!
//! Run with: `cargo run --release --example microbial_fuel_cell`
//!
//! The example uses a 300-reaction synthetic model so it finishes quickly; the
//! Figure 4 experiment binary (`cargo run --release -p pathway-bench --bin
//! figure4`) runs the full 608-reaction scale.

use pathway_core::prelude::*;
use pathway_core::render_table;

fn main() {
    // First look at the pure FBA extremes of the synthetic organism.
    let model = GeobacterModel::builder().reactions(300).build();
    let max_biomass = model.max_biomass().expect("biomass FBA is feasible");
    let max_electron = model.max_electron().expect("electron FBA is feasible");
    println!(
        "FBA extremes: max biomass {:.3} 1/h, max electron production {:.1} mmol/gDW/h",
        max_biomass.objective_value, max_electron.objective_value
    );

    // Then run the multi-objective search over the full flux vector. The
    // offspring batches of each island are evaluated on 4 worker threads;
    // swap in `EvalBackend::Serial` and the result is bit-identical, just
    // slower on multicore hardware.
    let outcome = GeobacterStudy::new()
        .with_reactions(300)
        .with_budget(60, 120)
        .with_backend(EvalBackend::Threads(4))
        .run(7)
        .expect("the study must run");

    println!(
        "multi-objective search: {} non-dominated flux distributions",
        outcome.front.len()
    );
    println!(
        "steady-state violation: random initial guess {:.3e}, best evolved {:.3e} ({}x reduction)",
        outcome.initial_violation,
        outcome.best_violation,
        (outcome.initial_violation / outcome.best_violation.max(1e-12)).round()
    );

    let labels = ["A", "B", "C", "D", "E"];
    let rows: Vec<Vec<String>> = outcome
        .labelled_points(5)
        .iter()
        .zip(labels.iter())
        .map(|(point, label)| {
            vec![
                label.to_string(),
                format!("{:.2}", point.electron_production),
                format!("{:.3}", point.biomass_production),
                format!("{:.2e}", point.violation),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            &[
                "Point",
                "Electron production",
                "Biomass production",
                "Violation"
            ],
            &rows
        )
    );
}
