//! Leaf redesign across all six environmental scenarios (three CO₂ eras ×
//! two triose-phosphate export regimes), the setting of the paper's Figure 1,
//! plus the per-enzyme re-engineering ratios of Figure 2.
//!
//! Run with: `cargo run --release --example leaf_redesign`
//!
//! Each scenario is one generic [`Study`] over its own
//! [`LeafRedesignProblem`]; the threaded evaluation backend spreads the
//! per-candidate ODE steady states over worker threads (bit-identical to the
//! serial backend for a fixed seed). Set `PATHWAY_EXAMPLE_BUDGET=quick` (as
//! CI does) to shrink the budgets.

use pathway_core::prelude::*;
use pathway_core::render_table;

mod common;
use common::quick_budget;

fn main() {
    let (population, generations) = if quick_budget() { (16, 20) } else { (50, 120) };
    let mut rows = Vec::new();
    let mut reference_outcome = None;

    for (index, scenario) in Scenario::all().into_iter().enumerate() {
        let study = Study::new(LeafRedesignProblem::new(scenario))
            .with_budget(population, generations)
            .with_migration((generations / 3).max(1), 0.5)
            .with_backend(EvalBackend::Threads(4));
        let result = study.run(100 + index as u64);
        let outcome = LeafDesignOutcome::from_front(scenario, result.front, result.evaluations);
        let max_uptake = outcome.max_uptake().clone();
        let min_nitrogen = outcome.min_nitrogen().clone();
        rows.push(vec![
            scenario.to_string(),
            outcome.front.len().to_string(),
            format!("{:.2}", max_uptake.uptake),
            format!("{:.0}", max_uptake.nitrogen),
            format!("{:.2}", min_nitrogen.uptake),
            format!("{:.0}", min_nitrogen.nitrogen),
        ]);
        if scenario == Scenario::present_low_export() {
            reference_outcome = Some(outcome);
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "Scenario",
                "Front size",
                "Max uptake",
                "N at max uptake",
                "Uptake at min N",
                "Min nitrogen",
            ],
            &rows
        )
    );

    // Figure 2: the candidate-B enzyme ratios for the reference scenario.
    if let Some(outcome) = reference_outcome {
        if let Some(candidate_b) = outcome.candidate_b(1.0) {
            println!(
                "candidate B: uptake {:.2} µmol/m²/s using {:.0} mg/l nitrogen ({:.0}% of natural)",
                candidate_b.uptake,
                candidate_b.nitrogen,
                100.0 * candidate_b.nitrogen / EnzymePartition::NATURAL_NITROGEN
            );
            println!("per-enzyme capacity relative to the natural leaf:");
            let ratios = candidate_b.partition.ratio_to_natural();
            for (kind, ratio) in EnzymeKind::ALL.iter().zip(ratios) {
                let bar_length = (ratio * 20.0).round().clamp(0.0, 60.0) as usize;
                println!(
                    "  {:<24} {:>6.2}  {}",
                    kind.name(),
                    ratio,
                    "#".repeat(bar_length)
                );
            }
        } else {
            println!(
                "no candidate matched the natural uptake in this budget; increase generations"
            );
        }
    }
}
