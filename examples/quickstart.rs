//! Quickstart: optimize the present-day leaf, mine the front, check robustness.
//!
//! Run with: `cargo run --release --example quickstart`

use pathway_core::prelude::*;
use pathway_core::{render_table, SelectionRow};

fn main() {
    // A small but representative study: 2 NSGA-II islands, broadcast
    // migration, present-day CO2 with the low triose-phosphate export rate.
    let study = LeafDesignStudy::new(Scenario::present_low_export())
        .with_budget(60, 150)
        .with_migration(50, 0.5)
        .with_robustness_trials(1_000);
    let outcome = study.run(42);

    println!(
        "PMO2 found {} Pareto-optimal leaf designs ({} evaluations)",
        outcome.front.len(),
        outcome.evaluations
    );
    println!(
        "natural leaf: uptake {:.3} µmol/m²/s at {:.0} mg/l nitrogen",
        Scenario::NATURAL_UPTAKE,
        EnzymePartition::NATURAL_NITROGEN
    );

    let selected = outcome.selected_designs(study.robustness_trials(), 20);
    let rows = [
        ("Closest-to-ideal", &selected.closest_to_ideal),
        ("Max CO2 Uptake", &selected.max_uptake),
        ("Min Nitrogen", &selected.min_nitrogen),
        ("Max Yield", &selected.max_yield),
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, (design, yield_percent))| {
            SelectionRow {
                selection: name.to_string(),
                co2_uptake: design.uptake,
                nitrogen: design.nitrogen,
                yield_percent: *yield_percent,
            }
            .cells()
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            &["Selection", "CO2 Uptake", "Nitrogen", "Yield %"],
            &table_rows
        )
    );

    if let Some(candidate_b) = outcome.candidate_b(1.0) {
        println!(
            "candidate B keeps the natural uptake ({:.2}) at {:.0}% of the natural nitrogen",
            candidate_b.uptake,
            100.0 * candidate_b.nitrogen / EnzymePartition::NATURAL_NITROGEN
        );
    }
}
