//! Quickstart: optimize the present-day leaf, mine the front, check robustness.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The study is expressed through the engine API: a generic [`Study`] over
//! the leaf redesign problem, driven with a logging observer. Set
//! `PATHWAY_EXAMPLE_BUDGET=quick` (as CI does) to shrink the budgets.

use pathway_core::prelude::*;
use pathway_core::{render_table, SelectionRow};

mod common;
use common::quick_budget;

fn main() {
    let (population, generations, trials) = if quick_budget() {
        (20, 30, 150)
    } else {
        (60, 150, 1_000)
    };

    // A small but representative study: 2 NSGA-II islands, broadcast
    // migration, present-day CO2 with the low triose-phosphate export rate.
    let scenario = Scenario::present_low_export();
    let study = Study::new(LeafRedesignProblem::new(scenario))
        .with_budget(population, generations)
        .with_migration((generations / 3).max(1), 0.5);

    // Drive the run explicitly so we can watch it converge.
    let mut driver = study
        .driver(42)
        .with_observer(LogObserver::new((generations / 5).max(1)));
    let front = driver.run();
    let outcome = LeafDesignOutcome::from_front(scenario, front, driver.optimizer().evaluations());

    println!(
        "PMO2 found {} Pareto-optimal leaf designs ({} evaluations over {} generations)",
        outcome.front.len(),
        outcome.evaluations,
        driver.generation()
    );
    println!(
        "natural leaf: uptake {:.3} µmol/m²/s at {:.0} mg/l nitrogen",
        Scenario::NATURAL_UPTAKE,
        EnzymePartition::NATURAL_NITROGEN
    );

    let selected = outcome.selected_designs(trials, 20);
    let rows = [
        ("Closest-to-ideal", &selected.closest_to_ideal),
        ("Max CO2 Uptake", &selected.max_uptake),
        ("Min Nitrogen", &selected.min_nitrogen),
        ("Max Yield", &selected.max_yield),
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, (design, yield_percent))| {
            SelectionRow {
                selection: name.to_string(),
                co2_uptake: design.uptake,
                nitrogen: design.nitrogen,
                yield_percent: *yield_percent,
            }
            .cells()
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            &["Selection", "CO2 Uptake", "Nitrogen", "Yield %"],
            &table_rows
        )
    );

    if let Some(candidate_b) = outcome.candidate_b(1.0) {
        println!(
            "candidate B keeps the natural uptake ({:.2}) at {:.0}% of the natural nitrogen",
            candidate_b.uptake,
            100.0 * candidate_b.nitrogen / EnzymePartition::NATURAL_NITROGEN
        );
    }
}
