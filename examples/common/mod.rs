//! Helpers shared by every example (not itself an example target).

/// `true` when shrunk budgets are requested via
/// `PATHWAY_EXAMPLE_BUDGET=quick`, as the CI examples step does.
pub fn quick_budget() -> bool {
    std::env::var("PATHWAY_EXAMPLE_BUDGET").is_ok_and(|v| v == "quick")
}
