#!/usr/bin/env bash
# A complete `pathway serve` session: start a daemon, submit a study,
# stream its telemetry, fetch the final front, shut the daemon down.
#
#   ./examples/serve_demo.sh [data-dir]
#
# Builds the `pathway` binary if needed; everything lands under the data
# dir (default: a fresh ./serve_demo.studies next to this script).
set -euo pipefail

cd "$(dirname "$0")/.."
DATA_DIR="${1:-examples/serve_demo.studies}"

cargo build --release -p pathway-cli
PATHWAY=target/release/pathway

rm -rf "$DATA_DIR"
mkdir -p "$DATA_DIR"

# 1. The daemon: one process, one shared 2-way evaluation pool, any number
#    of concurrent studies. Port 0 picks a free port; the bound address is
#    recorded in $DATA_DIR/endpoint for the client commands below.
"$PATHWAY" serve "$DATA_DIR" --listen 127.0.0.1:0 --threads 2 &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null || true' EXIT
until [ -s "$DATA_DIR/endpoint" ]; do sleep 0.1; done
echo "daemon up at $(cat "$DATA_DIR/endpoint")"

# 2. Submit two studies; they interleave one generation at a time on the
#    shared pool, so neither starves the other.
"$PATHWAY" submit examples/quickstart.spec --data-dir "$DATA_DIR"
"$PATHWAY" submit examples/leaf_redesign.spec --data-dir "$DATA_DIR"

# 3. Live state: per-job generations plus the executor's queue/active
#    gauges, sampled while the jobs are actually running.
"$PATHWAY" status --data-dir "$DATA_DIR"

# 4. Stream job-0001's per-generation telemetry until it completes. (Safe
#    to interrupt: watchers are telemetry-only and never affect the run.)
"$PATHWAY" watch job-0001 --data-dir "$DATA_DIR"

# 5. Harvest the front — byte-identical to what `pathway run --front-out`
#    would have produced for the same spec.
"$PATHWAY" fetch-front job-0001 --data-dir "$DATA_DIR" --out "$DATA_DIR/job-0001.front"
head -n 3 "$DATA_DIR/job-0001.front"

# 6. Clean shutdown: every still-running job writes a checkpoint first. A
#    later `pathway serve` over the same data dir resumes them
#    bit-identically — try `kill -9 $DAEMON_PID` instead and see.
"$PATHWAY" shutdown --data-dir "$DATA_DIR"
wait "$DAEMON_PID"
trap - EXIT
echo "done; artifacts in $DATA_DIR"
