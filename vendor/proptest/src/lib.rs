//! Minimal, deterministic, in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate vendors the
//! subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `fn name(arg in strategy, ...) { .. }`
//!   test bodies,
//! * range strategies over `f64` / unsigned integers and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream there is no shrinking: each test runs a fixed number of
//! seeded cases (default 64, override with `PROPTEST_CASES`) derived from
//! the test's name, so failures reproduce exactly across runs.

#![deny(missing_docs)]

use std::ops::Range;

/// Deterministic SplitMix64 generator driving test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`
    /// (typically the property-test function name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(64)
}

/// A source of test-case values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! impl_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $ty
            }
        }
    )*};
}

impl_strategy_int!(usize, u64, u32, u16, u8);

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with element strategy `S` and a length
    /// drawn from a half-open range. Built by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Returns a strategy for `Vec<S::Value>` with `len` in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Everything a property test needs in scope, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` expands to a regular
/// `#[test]` that runs [`cases`] generated inputs through `body`. Generated
/// values must be `Clone + Debug` so failing cases can report their inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    // The body gets clones so the originals stay printable on
                    // failure; inputs are only Debug-formatted when a case
                    // actually fails.
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe({
                        $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                        move || -> () { $body }
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs:",
                            stringify!($name),
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), &$arg);)+
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

/// Property-test assertion; panics (failing the current case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let strat = crate::collection::vec(0.0f64..1.0, 2..5);
        let mut rng = TestRng::deterministic("len");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_values_in_range(x in 1.5f64..2.5, n in 3usize..9) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }
    }
}
