//! Minimal, in-tree stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this crate vendors the
//! API surface the `pathway-bench` benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`] — with a simple
//! wall-clock measurement loop instead of upstream's statistical engine.
//! Each benchmark runs a short warm-up, then `sample_size` timed samples,
//! and reports the per-iteration mean and min.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, &mut body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| {
            body(b, input)
        });
        self
    }

    /// Runs an unparameterized benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut body);
        self
    }

    /// Finishes the group (upstream emits summary reports here).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `body`, once per sample, after a brief warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..3.min(self.sample_size) {
            black_box(body());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, body: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    body(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {mean:>12?}   min {min:>12?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $($group_name();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert!(runs >= 20);
    }

    #[test]
    fn group_samples_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| {
                runs += n;
            });
        });
        group.finish();
        // 3 warm-up + 5 timed iterations, each adding n = 3.
        assert_eq!(runs, 24);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
