//! Minimal, deterministic, in-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access, so instead of the real
//! `rand` this workspace vendors the small API surface the pathway crates
//! actually use: the [`Rng`] extension trait (`gen`, `gen_bool`,
//! `gen_range`), [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` is a SplitMix64-seeded xoshiro256++ generator: statistically
//! solid for Monte-Carlo ensembles and evolutionary operators, fully
//! deterministic for a given seed, and dependency-free.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the unit interval / full range
/// by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range");
        // Uniform over [lo, hi]; the closed upper bound is measure-zero for
        // continuous draws, so the half-open formula is adequate.
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! impl_sample_range_int {
    ($(($ty:ty, $uty:ty)),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty integer range");
                // The span is computed in the unsigned twin of the same
                // width: signed subtraction would overflow for ranges wider
                // than $ty::MAX (e.g. i32::MIN..i32::MAX), while the
                // wrapping difference reinterpreted as unsigned is exact.
                let span = self.end.wrapping_sub(self.start) as $uty as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, negligible for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                // Adding modulo 2^width lands exactly in [start, end) for
                // the same reason the span computation is exact.
                self.start.wrapping_add(hi as $uty as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive integer range");
                if lo == <$ty>::MIN && hi == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = hi.wrapping_sub(lo) as $uty as u64 + 1;
                let drawn = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(drawn as $uty as $ty)
            }
        }
    )*};
}

impl_sample_range_int!(
    (usize, usize),
    (u64, u64),
    (u32, u32),
    (u16, u16),
    (u8, u8),
    (i64, u64),
    (i32, u32)
);

/// The user-facing random-sampling extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform `[0, 1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` (including NaN), matching upstream
    /// `rand` rather than silently returning `false`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} is outside [0.0, 1.0]"
        );
        self.next_f64() < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; the exact stream differs from
    /// upstream, which is fine because every consumer in this workspace
    /// treats the stream as opaque and only relies on determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state so callers can checkpoint the
        /// generator as plain data. Not part of upstream `rand`; used by the
        /// pathway engine's resumable optimizer snapshots.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously captured with
        /// [`StdRng::state`], continuing the exact same stream.
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (the stream
        /// would be constant zero); it cannot arise from
        /// [`super::SeedableRng::seed_from_u64`] and is remapped to the
        /// seed-0 state defensively.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as super::SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let x = rng.gen_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&x));
        }
    }

    #[test]
    fn signed_ranges_stay_in_bounds_even_at_full_width() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10_000 {
            let wide = rng.gen_range(i32::MIN..i32::MAX);
            assert!(wide < i32::MAX);
            let negative = rng.gen_range(-7i32..=-3);
            assert!((-7..=-3).contains(&negative));
            let huge = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = huge; // full-width draw must not panic
        }
        // The distribution actually covers both halves of a wide range.
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..1_000 {
            let x = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            saw_negative |= x < 0;
            saw_positive |= x > 0;
        }
        assert!(saw_negative && saw_positive);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.gen::<u64>();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.gen::<u64>(), resumed.gen::<u64>());
        }
        // The degenerate all-zero state is remapped to a working generator.
        let mut defensive = StdRng::from_state([0; 4]);
        assert_ne!(defensive.gen::<u64>(), defensive.gen::<u64>());
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
